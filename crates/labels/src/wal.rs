//! Checksummed, fsync'd write-ahead log for the dynamic oracle.
//!
//! The generation store (PR 4) persists a full snapshot per rebuild, so a
//! crash *between* rebuilds used to lose every buffered update. The WAL
//! closes that window, LSM-style: every accepted update is appended as a
//! length-prefixed, per-record-CRC'd record and `fsync`ed *before* it is
//! applied in memory. On open, the records since the last manifest swap
//! are replayed on top of the persisted generation; after each manifest
//! swap the log is rotated (a fresh `wal-<generation>.log` is created and
//! stale logs are pruned), so the log only ever holds the updates the
//! manifest does not.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header: magic "FSDLWAL1" (8) | generation u64 | fnv32(prefix) u32
//! record: len u32 | fnv32(payload) u32 | payload (len bytes)
//! payload: tag u8 | vertex ids (u32 each)
//! ```
//!
//! The header is written via temp-file + rename, so a log file either
//! does not exist or has a complete header. Records are appended in
//! place; recovery distinguishes two failure shapes:
//!
//! * a **torn tail** — fewer bytes than the frame announces, at the end
//!   of the file: the record was never acknowledged (the crash window),
//!   so it is truncated away and replay proceeds with the sound prefix;
//! * a **corrupt record** — a CRC mismatch, an implausible length, or a
//!   malformed payload anywhere: an acknowledged record can no longer be
//!   trusted, so the open fails with a typed [`WalError`], never a panic
//!   and never a silent drop.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fsdl_graph::NodeId;

use crate::crash::{self, CrashPoint};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"FSDLWAL1";
/// Header length: magic + generation + crc.
pub const WAL_HEADER_BYTES: u64 = 8 + 8 + 4;
/// Frame prefix length: record length + record crc.
const FRAME_BYTES: u64 = 4 + 4;
/// Upper bound on a record payload. Every legitimate record is ≤ 9 bytes
/// (tag + two ids); the tight cap turns a bit-flipped length field into a
/// typed corruption instead of an absurd torn-tail claim.
pub const MAX_RECORD_BYTES: u32 = 64;

/// The WAL file name for `generation`.
pub fn wal_file_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

/// A typed error from the write-ahead log. Like [`crate::StoreError`],
/// every observable on-disk corruption maps here — the replay path never
/// panics on untrusted bytes.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An OS-level I/O failure.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        message: String,
    },
    /// The log file's header is malformed (bad magic or checksum).
    HeaderCorrupt {
        /// The log path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// The header's generation does not match the manifest's — the log
    /// belongs to a different store lineage.
    GenerationMismatch {
        /// Generation recorded in the log header.
        found: u64,
        /// Generation the manifest expects.
        expected: u64,
    },
    /// An acknowledged record fails its CRC, announces an implausible
    /// length, or decodes to a malformed payload.
    RecordCorrupt {
        /// Byte offset of the record's frame in the file.
        offset: u64,
        /// What went wrong.
        message: String,
    },
    /// A replayed record is inconsistent with the recovered state (e.g.
    /// a restore of a fault that is not deleted) — only reachable through
    /// corruption that defeats the CRC, but still typed, never trusted.
    RecordInvalid {
        /// 0-based index of the record in the log.
        index: usize,
        /// What went wrong.
        message: String,
    },
    /// An injected crash point fired ([`crate::crash`]): the on-disk
    /// state is exactly what a real crash here would leave. The oracle
    /// must be treated as dead — drop it and reopen from the store.
    Injected {
        /// The crash point's name.
        point: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, message } => {
                write!(f, "wal i/o error on {}: {message}", path.display())
            }
            WalError::HeaderCorrupt { path, message } => {
                write!(f, "corrupt wal header in {}: {message}", path.display())
            }
            WalError::GenerationMismatch { found, expected } => {
                write!(
                    f,
                    "wal is for generation {found}, manifest expects {expected}"
                )
            }
            WalError::RecordCorrupt { offset, message } => {
                write!(f, "corrupt wal record at byte {offset}: {message}")
            }
            WalError::RecordInvalid { index, message } => {
                write!(f, "invalid wal record #{index}: {message}")
            }
            WalError::Injected { point } => {
                write!(f, "injected crash at {point}")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: &std::io::Error) -> WalError {
    WalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// 64-bit FNV-1a (same primitive as the store's).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv32(bytes: &[u8]) -> u32 {
    let h = fnv1a64(bytes);
    (h ^ (h >> 32)) as u32
}

/// One logged update, mirroring the [`crate::DynamicOracle`] update API.
/// `Fold` records an explicit [`crate::DynamicOracle::rebuild`] call, so
/// replay reproduces the exact baked/buffered split (and therefore the
/// exact labeling) of the pre-crash oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// `delete_vertex(v)`.
    DeleteVertex(NodeId),
    /// `delete_edge(a, b)`.
    DeleteEdge(NodeId, NodeId),
    /// `restore_vertex(v)`.
    RestoreVertex(NodeId),
    /// `restore_edge(a, b)`.
    RestoreEdge(NodeId, NodeId),
    /// An explicit in-memory fold of the buffer into the baked set.
    Fold,
}

const TAG_DELETE_VERTEX: u8 = 1;
const TAG_DELETE_EDGE: u8 = 2;
const TAG_RESTORE_VERTEX: u8 = 3;
const TAG_RESTORE_EDGE: u8 = 4;
const TAG_FOLD: u8 = 5;

impl WalRecord {
    fn encode(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        match self {
            WalRecord::DeleteVertex(v) => {
                out.push(TAG_DELETE_VERTEX);
                out.extend_from_slice(&v.raw().to_le_bytes());
            }
            WalRecord::DeleteEdge(a, b) => {
                out.push(TAG_DELETE_EDGE);
                out.extend_from_slice(&a.raw().to_le_bytes());
                out.extend_from_slice(&b.raw().to_le_bytes());
            }
            WalRecord::RestoreVertex(v) => {
                out.push(TAG_RESTORE_VERTEX);
                out.extend_from_slice(&v.raw().to_le_bytes());
            }
            WalRecord::RestoreEdge(a, b) => {
                out.push(TAG_RESTORE_EDGE);
                out.extend_from_slice(&a.raw().to_le_bytes());
                out.extend_from_slice(&b.raw().to_le_bytes());
            }
            WalRecord::Fold => out.push(TAG_FOLD),
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let id = |at: usize| -> Result<NodeId, String> {
            let bytes: [u8; 4] = payload
                .get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| format!("payload too short for id at byte {at}"))?;
            Ok(NodeId::new(u32::from_le_bytes(bytes)))
        };
        let expect_len = |want: usize| -> Result<(), String> {
            if payload.len() == want {
                Ok(())
            } else {
                Err(format!(
                    "payload is {} bytes, expected {want}",
                    payload.len()
                ))
            }
        };
        match payload.first() {
            Some(&TAG_DELETE_VERTEX) => {
                expect_len(5)?;
                Ok(WalRecord::DeleteVertex(id(1)?))
            }
            Some(&TAG_DELETE_EDGE) => {
                expect_len(9)?;
                Ok(WalRecord::DeleteEdge(id(1)?, id(5)?))
            }
            Some(&TAG_RESTORE_VERTEX) => {
                expect_len(5)?;
                Ok(WalRecord::RestoreVertex(id(1)?))
            }
            Some(&TAG_RESTORE_EDGE) => {
                expect_len(9)?;
                Ok(WalRecord::RestoreEdge(id(1)?, id(5)?))
            }
            Some(&TAG_FOLD) => {
                expect_len(1)?;
                Ok(WalRecord::Fold)
            }
            Some(&tag) => Err(format!("unknown record tag {tag}")),
            None => Err("empty payload".into()),
        }
    }
}

/// What a [`Wal::open`] replay scan found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records recovered (in append order).
    pub records: usize,
    /// Bytes of torn tail truncated away (a crash window, not corruption).
    pub truncated_bytes: u64,
}

/// The result of structurally scanning a WAL file without opening it for
/// appending (used by the chaos sweep to rebuild reference prefixes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalScan {
    /// Generation recorded in the header.
    pub generation: u64,
    /// Recovered records, in append order.
    pub records: Vec<WalRecord>,
    /// For each record, the byte offset one past its frame (so
    /// `file[..ends[k-1]]` is a valid log holding the first `k` records).
    pub ends: Vec<u64>,
    /// Bytes of torn tail after the last sound record.
    pub truncated_bytes: u64,
}

/// Parses `bytes` as a WAL file. Torn tails are reported, corrupt records
/// are typed errors.
fn scan_bytes(path: &Path, bytes: &[u8]) -> Result<WalScan, WalError> {
    let header_len = WAL_HEADER_BYTES as usize;
    if bytes.len() < header_len {
        return Err(WalError::HeaderCorrupt {
            path: path.to_path_buf(),
            message: format!("file is {} bytes, header needs {header_len}", bytes.len()),
        });
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(WalError::HeaderCorrupt {
            path: path.to_path_buf(),
            message: "bad magic".into(),
        });
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let recorded = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let computed = fnv32(&bytes[..16]);
    if recorded != computed {
        return Err(WalError::HeaderCorrupt {
            path: path.to_path_buf(),
            message: format!(
                "header checksum mismatch: recorded {recorded:08x}, computed {computed:08x}"
            ),
        });
    }
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut at = header_len;
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_BYTES as usize {
            // Torn mid-frame: the record was never complete, never acked.
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(WalError::RecordCorrupt {
                offset: at as u64,
                message: format!("implausible record length {len}"),
            });
        }
        let body_at = at + FRAME_BYTES as usize;
        let Some(payload) = bytes.get(body_at..body_at + len as usize) else {
            // Torn mid-payload: truncate.
            break;
        };
        let computed = fnv32(payload);
        if crc != computed {
            return Err(WalError::RecordCorrupt {
                offset: at as u64,
                message: format!(
                    "record checksum mismatch: recorded {crc:08x}, computed {computed:08x}"
                ),
            });
        }
        let record = WalRecord::decode(payload).map_err(|message| WalError::RecordCorrupt {
            offset: at as u64,
            message,
        })?;
        at = body_at + len as usize;
        records.push(record);
        ends.push(at as u64);
    }
    Ok(WalScan {
        generation,
        records,
        ends,
        truncated_bytes: (bytes.len() - at) as u64,
    })
}

/// Reads and structurally validates the WAL file at `path` without
/// taking write ownership. Exposed for tooling and the chaos sweep.
///
/// # Errors
///
/// A typed [`WalError`] for any corruption; never panics on any byte
/// sequence.
pub fn scan(path: &Path) -> Result<WalScan, WalError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
    scan_bytes(path, &bytes)
}

/// An open, appendable write-ahead log for one store generation.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: fs::File,
    generation: u64,
    /// Bytes appended past the header (i.e. since rotation).
    bytes: u64,
    /// Records appended or replayed since rotation.
    records: u64,
}

impl Wal {
    /// Creates a fresh, empty log `dir/wal-<generation>.log`. The header
    /// is staged through a temp file + rename, so a crash mid-create
    /// leaves either no log or a complete empty one.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on any filesystem failure.
    pub fn create(dir: &Path, generation: u64) -> Result<Wal, WalError> {
        let name = wal_file_name(generation);
        let path = dir.join(&name);
        let tmp = dir.join(format!(".tmp-{name}"));
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&generation.to_le_bytes());
        header.extend_from_slice(&fnv32(&header).to_le_bytes());
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        f.write_all(&header).map_err(|e| io_err(&tmp, &e))?;
        f.sync_all().map_err(|e| io_err(&tmp, &e))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, &e))?;
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        let mut wal = Wal {
            path,
            file,
            generation,
            bytes: 0,
            records: 0,
        };
        wal.seek_end()?;
        Ok(wal)
    }

    /// Opens an existing log, validates every record, truncates any torn
    /// tail in place, and returns the log (positioned for appending) plus
    /// the recovered records.
    ///
    /// # Errors
    ///
    /// [`WalError::GenerationMismatch`] when the header's generation is
    /// not `expected_generation`; [`WalError::HeaderCorrupt`] /
    /// [`WalError::RecordCorrupt`] for corruption; [`WalError::Io`] for
    /// filesystem failures.
    pub fn open(
        dir: &Path,
        expected_generation: u64,
    ) -> Result<(Wal, Vec<WalRecord>, ReplayReport), WalError> {
        let path = dir.join(wal_file_name(expected_generation));
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err(&path, &e))?;
        let scan = scan_bytes(&path, &bytes)?;
        if scan.generation != expected_generation {
            return Err(WalError::GenerationMismatch {
                found: scan.generation,
                expected: expected_generation,
            });
        }
        let sound_len = bytes.len() as u64 - scan.truncated_bytes;
        if scan.truncated_bytes > 0 {
            file.set_len(sound_len).map_err(|e| io_err(&path, &e))?;
            file.sync_all().map_err(|e| io_err(&path, &e))?;
        }
        let report = ReplayReport {
            records: scan.records.len(),
            truncated_bytes: scan.truncated_bytes,
        };
        let mut wal = Wal {
            path,
            file,
            generation: expected_generation,
            bytes: sound_len - WAL_HEADER_BYTES,
            records: scan.records.len() as u64,
        };
        wal.seek_end()?;
        Ok((wal, scan.records, report))
    }

    fn seek_end(&mut self) -> Result<(), WalError> {
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, &e))?;
        Ok(())
    }

    /// Appends `record` and `fsync`s before returning — the durability
    /// handshake: only after `Ok` may the update be applied in memory.
    ///
    /// On an I/O failure the partial frame is rolled back with
    /// `set_len`, so the log stays sound for subsequent appends; if even
    /// the rollback fails the error still surfaces and recovery's
    /// torn-tail truncation handles the remains.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failure, [`WalError::Injected`]
    /// when an armed crash point fires (the oracle must then be treated
    /// as crashed).
    pub fn append(&mut self, record: WalRecord) -> Result<(), WalError> {
        let injected = |point: CrashPoint| WalError::Injected {
            point: point.name().to_string(),
        };
        crash::fire(CrashPoint::BeforeWalAppend).map_err(injected)?;
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let start = WAL_HEADER_BYTES + self.bytes;
        if let Err(p) = crash::fire(CrashPoint::MidWalAppend) {
            // Leave a genuinely torn record behind, exactly like a crash
            // mid-write: a durable prefix of the frame.
            let torn = &frame[..frame.len() / 2];
            let _ = self.file.write_all(torn);
            let _ = self.file.sync_all();
            return Err(injected(p));
        }
        if let Err(e) = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_all())
        {
            // Roll the partial frame back so the next append stays sound.
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::End(0));
            return Err(io_err(&self.path, &e));
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        crash::fire(CrashPoint::AfterWalAppend).map_err(injected)?;
        Ok(())
    }

    /// The generation this log belongs to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes appended since rotation (excluding the header).
    pub fn bytes_since_rotation(&self) -> u64 {
        self.bytes
    }

    /// Records appended or replayed since rotation.
    pub fn records_since_rotation(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort removal of WAL files other than `keep`'s generation.
/// Like [`crate::store::prune_generations`], failures are ignored —
/// pruning is hygiene, never a correctness requirement.
pub fn prune_stale_wals(dir: &Path, keep: u64) {
    let keep_name = wal_file_name(keep);
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("wal-") && name.ends_with(".log") && name != keep_name {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let k = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("fsdl-wal-unit-{tag}-{}-{k}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn v(x: u32) -> NodeId {
        NodeId::new(x)
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = scratch_dir("roundtrip");
        let records = [
            WalRecord::DeleteVertex(v(3)),
            WalRecord::DeleteEdge(v(1), v(2)),
            WalRecord::RestoreVertex(v(3)),
            WalRecord::Fold,
            WalRecord::RestoreEdge(v(1), v(2)),
        ];
        let mut wal = Wal::create(&dir, 7).unwrap();
        for r in records {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.records_since_rotation(), 5);
        let bytes = wal.bytes_since_rotation();
        assert!(bytes > 0);
        drop(wal);
        let (wal, replayed, report) = Wal::open(&dir, 7).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(
            report,
            ReplayReport {
                records: 5,
                truncated_bytes: 0
            }
        );
        assert_eq!(wal.bytes_since_rotation(), bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = scratch_dir("torn");
        let mut wal = Wal::create(&dir, 1).unwrap();
        wal.append(WalRecord::DeleteVertex(v(4))).unwrap();
        wal.append(WalRecord::DeleteVertex(v(5))).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let full = fs::read(&path).unwrap();
        // Tear at every byte boundary inside the last record's frame.
        let second_start = full.len() - (FRAME_BYTES as usize + 5);
        for cut in second_start + 1..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (wal, replayed, report) = Wal::open(&dir, 1).unwrap();
            assert_eq!(replayed, vec![WalRecord::DeleteVertex(v(4))], "cut {cut}");
            assert_eq!(report.truncated_bytes, (cut - second_start) as u64);
            assert_eq!(fs::metadata(&path).unwrap().len(), second_start as u64);
            drop(wal);
            fs::write(&path, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_continue_after_torn_tail_recovery() {
        let dir = scratch_dir("continue");
        let mut wal = Wal::create(&dir, 1).unwrap();
        wal.append(WalRecord::DeleteVertex(v(1))).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]); // torn frame prefix
        fs::write(&path, &bytes).unwrap();
        let (mut wal, replayed, report) = Wal::open(&dir, 1).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(report.truncated_bytes, 3);
        wal.append(WalRecord::DeleteVertex(v(2))).unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(&dir, 1).unwrap();
        assert_eq!(
            replayed,
            vec![WalRecord::DeleteVertex(v(1)), WalRecord::DeleteVertex(v(2))]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_typed_never_silent() {
        let dir = scratch_dir("corrupt");
        let mut wal = Wal::create(&dir, 2).unwrap();
        wal.append(WalRecord::DeleteEdge(v(1), v(2))).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let good = fs::read(&path).unwrap();

        // Bit-flip every byte of the record region: CRC or length must
        // catch each one as a typed error (flips in the length field that
        // keep it plausible show up as torn tails — also sound).
        let header = WAL_HEADER_BYTES as usize;
        for byte in header..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            match Wal::open(&dir, 2) {
                Err(WalError::RecordCorrupt { .. }) => {}
                Ok((_, replayed, _)) => {
                    assert!(replayed.is_empty(), "byte {byte}: silent record change");
                }
                Err(e) => panic!("byte {byte}: unexpected error {e:?}"),
            }
        }
        // Header corruption.
        let mut bad = good.clone();
        bad[0] ^= 1;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::open(&dir, 2),
            Err(WalError::HeaderCorrupt { .. })
        ));
        // Generation mismatch.
        fs::write(&path, &good).unwrap();
        fs::rename(&path, dir.join(wal_file_name(3))).unwrap();
        assert!(matches!(
            Wal::open(&dir, 3),
            Err(WalError::GenerationMismatch {
                found: 2,
                expected: 3
            })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_exposes_prefix_boundaries() {
        let dir = scratch_dir("scan");
        let mut wal = Wal::create(&dir, 1).unwrap();
        for k in 0..4 {
            wal.append(WalRecord::DeleteVertex(v(k))).unwrap();
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 4);
        assert_eq!(s.ends.len(), 4);
        let full = fs::read(&path).unwrap();
        assert_eq!(*s.ends.last().unwrap(), full.len() as u64);
        // Each prefix is itself a valid log with k records.
        for k in 0..4usize {
            let end = if k == 0 {
                WAL_HEADER_BYTES
            } else {
                s.ends[k - 1]
            };
            fs::write(&path, &full[..end as usize]).unwrap();
            let p = scan(&path).unwrap();
            assert_eq!(p.records.len(), k);
            assert_eq!(p.truncated_bytes, 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_only_current_generation() {
        let dir = scratch_dir("prune");
        for g in [1u64, 2, 3] {
            drop(Wal::create(&dir, g).unwrap());
        }
        prune_stale_wals(&dir, 2);
        assert!(!dir.join(wal_file_name(1)).exists());
        assert!(dir.join(wal_file_name(2)).exists());
        assert!(!dir.join(wal_file_name(3)).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
