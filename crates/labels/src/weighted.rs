//! Weighted graphs via edge subdivision — a faithful extension beyond the
//! paper's unweighted setting.
//!
//! The paper treats unweighted graphs only. For graphs with small integer
//! edge weights `w(e) ∈ {1, …, W}` there is a standard exact reduction:
//! subdivide every weight-`w` edge into a path of `w` unit edges through
//! `w − 1` fresh auxiliary vertices. Shortest-path distances between
//! original vertices are preserved *exactly*, the doubling dimension grows
//! by at most a constant for bounded `W`, and faults translate directly:
//!
//! * a faulty original **vertex** stays a faulty vertex;
//! * a faulty weighted **edge** becomes a fault on its private auxiliary
//!   chain (one auxiliary vertex suffices — the chain serves no other
//!   pair), or on the unit edge itself when `w = 1`.
//!
//! [`WeightedOracle`] packages the reduction: build once, query with
//! weighted-world vertices and faults, and inherit the full `(1+ε)`
//! forbidden-set guarantee on the weighted metric.

use std::collections::HashMap;

use fsdl_graph::{Dist, Edge, FaultSet, Graph, GraphBuilder, NodeId};

use crate::decode::DecodeScratch;
use crate::oracle::{ForbiddenSetOracle, OracleError};
use crate::params::SchemeParams;

/// A forbidden set in the weighted world: original vertices and weighted
/// edges (by endpoints).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightedFaults {
    /// Forbidden original vertices.
    pub vertices: Vec<NodeId>,
    /// Forbidden weighted edges, by original endpoints.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl WeightedFaults {
    /// The empty fault set.
    pub fn none() -> Self {
        WeightedFaults::default()
    }

    /// `|F|`.
    pub fn len(&self) -> usize {
        self.vertices.len() + self.edges.len()
    }

    /// `true` when nothing is forbidden.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }
}

/// A `(1+ε)` forbidden-set distance oracle over an integer-weighted graph,
/// implemented by subdividing into the unweighted scheme.
///
/// # Examples
///
/// ```
/// use fsdl_graph::NodeId;
/// use fsdl_labels::{WeightedFaults, WeightedOracle};
///
/// // A weighted triangle: 0-1 costs 5, 1-2 costs 1, 0-2 costs 3.
/// let oracle = WeightedOracle::new(3, &[(0, 1, 5), (1, 2, 1), (0, 2, 3)], 1.0);
/// let d = oracle.distance(NodeId::new(0), NodeId::new(1), &WeightedFaults::none());
/// assert_eq!(d.finite(), Some(4)); // 0-2-1 beats the direct 5
/// ```
#[derive(Debug)]
pub struct WeightedOracle {
    original_n: usize,
    subdivision: Graph,
    /// Weighted edge → representative fault target in the subdivision:
    /// either an auxiliary chain vertex or the unit edge itself.
    edge_fault_target: HashMap<Edge, FaultTarget>,
    oracle: ForbiddenSetOracle,
}

#[derive(Clone, Copy, Debug)]
enum FaultTarget {
    /// `w = 1`: the edge exists directly in the subdivision.
    UnitEdge(NodeId, NodeId),
    /// `w > 1`: any chain vertex kills the edge; we use the first.
    AuxVertex(NodeId),
}

impl WeightedOracle {
    /// Builds the oracle for the weighted graph given as `(u, v, w)`
    /// triples over vertices `0..n`, at precision `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, any endpoint is out of range, any weight is 0,
    /// an edge repeats, or `u == v`.
    pub fn new(n: usize, weighted_edges: &[(u32, u32, u32)], epsilon: f64) -> Self {
        assert!(n > 0, "weighted graph needs vertices");
        let mut total_aux = 0usize;
        for &(u, v, w) in weighted_edges {
            assert!(u != v, "self-loops are not allowed");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "endpoint out of range"
            );
            assert!(w >= 1, "weights must be positive integers");
            total_aux += (w - 1) as usize;
        }
        let total = n + total_aux;
        let mut b = GraphBuilder::new(total);
        let mut edge_fault_target = HashMap::new();
        let mut next_aux = n as u32;
        for &(u, v, w) in weighted_edges {
            let key = Edge::new(NodeId::new(u), NodeId::new(v));
            if w == 1 {
                b.add_edge(u, v).expect("validated edge");
                let prev = edge_fault_target
                    .insert(key, FaultTarget::UnitEdge(NodeId::new(u), NodeId::new(v)));
                assert!(prev.is_none(), "duplicate weighted edge {key}");
            } else {
                let mut prev = u;
                let first_aux = next_aux;
                for _ in 0..(w - 1) {
                    b.add_edge(prev, next_aux).expect("validated edge");
                    prev = next_aux;
                    next_aux += 1;
                }
                b.add_edge(prev, v).expect("validated edge");
                let dup =
                    edge_fault_target.insert(key, FaultTarget::AuxVertex(NodeId::new(first_aux)));
                assert!(dup.is_none(), "duplicate weighted edge {key}");
            }
        }
        let subdivision = b.build();
        let params = SchemeParams::new(epsilon, subdivision.num_vertices());
        let oracle = ForbiddenSetOracle::with_params(&subdivision, params);
        WeightedOracle {
            original_n: n,
            subdivision,
            edge_fault_target,
            oracle,
        }
    }

    /// Number of original (weighted-world) vertices.
    pub fn num_vertices(&self) -> usize {
        self.original_n
    }

    /// The unweighted subdivision the oracle actually runs on.
    pub fn subdivision(&self) -> &Graph {
        &self.subdivision
    }

    /// The `(1+ε)`-approximate weighted distance `d_{G∖F}(s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `s`/`t`/a fault vertex is not an original vertex, or a
    /// fault edge is not a weighted edge of the graph.
    pub fn distance(&self, s: NodeId, t: NodeId, faults: &WeightedFaults) -> Dist {
        self.distance_with(s, t, faults, &mut DecodeScratch::new())
    }

    /// [`WeightedOracle::distance`] with a caller-provided
    /// [`DecodeScratch`], for serving loops; same answer, bit for bit.
    ///
    /// # Panics
    ///
    /// As [`WeightedOracle::distance`].
    pub fn distance_with(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &WeightedFaults,
        scratch: &mut DecodeScratch,
    ) -> Dist {
        assert!(
            s.index() < self.original_n && t.index() < self.original_n,
            "query vertex out of range"
        );
        let f = match self.lower_faults(faults) {
            Ok(f) => f,
            Err(OracleError::VertexOutOfRange { .. }) => panic!("fault vertex out of range"),
            Err(OracleError::FaultEdgeNotInGraph { a, b }) => {
                panic!("{} is not a weighted edge of the graph", Edge::new(a, b))
            }
        };
        self.oracle.query_with(s, t, &f, scratch).distance
    }

    /// Strict variant of [`WeightedOracle::distance`]: malformed queries
    /// come back as a typed [`OracleError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::VertexOutOfRange`] when `s`, `t`, or a fault
    /// vertex is not an original vertex, and
    /// [`OracleError::FaultEdgeNotInGraph`] when a fault edge is not a
    /// weighted edge of the graph.
    pub fn try_distance(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &WeightedFaults,
    ) -> Result<Dist, OracleError> {
        self.try_distance_with(s, t, faults, &mut DecodeScratch::new())
    }

    /// [`WeightedOracle::try_distance`] with a caller-provided
    /// [`DecodeScratch`]; same answers and errors, bit for bit.
    ///
    /// # Errors
    ///
    /// As [`WeightedOracle::try_distance`].
    pub fn try_distance_with(
        &self,
        s: NodeId,
        t: NodeId,
        faults: &WeightedFaults,
        scratch: &mut DecodeScratch,
    ) -> Result<Dist, OracleError> {
        for v in [s, t] {
            if v.index() >= self.original_n {
                return Err(OracleError::VertexOutOfRange {
                    v,
                    n: self.original_n,
                });
            }
        }
        let f = self.lower_faults(faults)?;
        Ok(self.oracle.query_with(s, t, &f, scratch).distance)
    }

    /// Translates weighted-world faults into subdivision faults, rejecting
    /// anything that does not name an original vertex or weighted edge.
    fn lower_faults(&self, faults: &WeightedFaults) -> Result<FaultSet, OracleError> {
        let mut f = FaultSet::empty();
        for &v in &faults.vertices {
            if v.index() >= self.original_n {
                return Err(OracleError::VertexOutOfRange {
                    v,
                    n: self.original_n,
                });
            }
            f.forbid_vertex(v);
        }
        for &(a, b) in &faults.edges {
            let key = Edge::new(a, b);
            match self.edge_fault_target.get(&key) {
                Some(FaultTarget::UnitEdge(x, y)) => {
                    f.forbid_edge_unchecked(*x, *y);
                }
                Some(FaultTarget::AuxVertex(x)) => {
                    f.forbid_vertex(*x);
                }
                None => {
                    return Err(OracleError::FaultEdgeNotInGraph {
                        a: key.lo(),
                        b: key.hi(),
                    })
                }
            }
        }
        Ok(f)
    }

    /// Weighted forbidden-set connectivity.
    pub fn connected(&self, s: NodeId, t: NodeId, faults: &WeightedFaults) -> bool {
        self.distance(s, t, faults).is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact weighted ground truth by Dijkstra on the triple list, with
    /// removed vertices/edges.
    fn exact(
        n: usize,
        edges: &[(u32, u32, u32)],
        s: NodeId,
        t: NodeId,
        faults: &WeightedFaults,
    ) -> Dist {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if faults.vertices.contains(&s) || faults.vertices.contains(&t) {
            return Dist::INFINITE;
        }
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            let blocked = faults
                .edges
                .iter()
                .any(|&(a, b)| Edge::new(a, b) == Edge::new(NodeId::new(u), NodeId::new(v)));
            if blocked
                || faults.vertices.contains(&NodeId::new(u))
                || faults.vertices.contains(&NodeId::new(v))
            {
                continue;
            }
            adj[u as usize].push((v as usize, u64::from(w)));
            adj[v as usize].push((u as usize, u64::from(w)));
        }
        let mut dist = vec![u64::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[s.index()] = 0;
        heap.push(Reverse((0u64, s.index())));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &adj[u] {
                if d + w < dist[v] {
                    dist[v] = d + w;
                    heap.push(Reverse((d + w, v)));
                }
            }
        }
        match dist[t.index()] {
            u64::MAX => Dist::INFINITE,
            d => Dist::new(u32::try_from(d).expect("small weights")),
        }
    }

    fn check_all_pairs(n: usize, edges: &[(u32, u32, u32)], eps: f64, faults: &WeightedFaults) {
        let oracle = WeightedOracle::new(n, edges, eps);
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                let got = oracle.distance(NodeId::new(s), NodeId::new(t), faults);
                let truth = exact(n, edges, NodeId::new(s), NodeId::new(t), faults);
                match truth.finite() {
                    None => assert!(got.is_infinite(), "{s}->{t}"),
                    Some(td) => {
                        let gd = got.finite().unwrap_or_else(|| panic!("missed {s}->{t}"));
                        assert!(gd >= td, "{s}->{t}: {gd} < {td}");
                        assert!(
                            f64::from(gd) <= (1.0 + eps) * f64::from(td) + 1e-9,
                            "{s}->{t}: {gd} vs {td}"
                        );
                    }
                }
            }
        }
    }

    const DIAMOND: &[(u32, u32, u32)] = &[(0, 1, 3), (1, 3, 4), (0, 2, 2), (2, 3, 2), (1, 2, 1)];

    #[test]
    fn failure_free_weighted_distances() {
        check_all_pairs(4, DIAMOND, 1.0, &WeightedFaults::none());
    }

    #[test]
    fn vertex_faults_weighted() {
        for f in 0..4u32 {
            let faults = WeightedFaults {
                vertices: vec![NodeId::new(f)],
                edges: vec![],
            };
            let oracle = WeightedOracle::new(4, DIAMOND, 1.0);
            for s in 0..4u32 {
                for t in 0..4u32 {
                    if s == f || t == f {
                        continue;
                    }
                    let got = oracle.distance(NodeId::new(s), NodeId::new(t), &faults);
                    let truth = exact(4, DIAMOND, NodeId::new(s), NodeId::new(t), &faults);
                    assert_eq!(got.is_finite(), truth.is_finite());
                    if let (Some(g), Some(tr)) = (got.finite(), truth.finite()) {
                        assert!(g >= tr && f64::from(g) <= 2.0 * f64::from(tr));
                    }
                }
            }
        }
    }

    #[test]
    fn edge_faults_weighted() {
        for &(a, b, _) in DIAMOND {
            let faults = WeightedFaults {
                vertices: vec![],
                edges: vec![(NodeId::new(a), NodeId::new(b))],
            };
            check_all_pairs(4, DIAMOND, 1.0, &faults);
        }
    }

    #[test]
    fn weighted_ring_detour() {
        // Ring with one heavy edge: removing the light path forces the
        // heavy one.
        let edges = &[(0u32, 1u32, 1u32), (1, 2, 1), (2, 3, 1), (3, 0, 10)];
        let oracle = WeightedOracle::new(4, edges, 1.0);
        let faults = WeightedFaults {
            vertices: vec![],
            edges: vec![(NodeId::new(1), NodeId::new(2))],
        };
        let d = oracle.distance(NodeId::new(0), NodeId::new(2), &faults);
        // 0-3-2 = 11 survives.
        let truth = exact(4, edges, NodeId::new(0), NodeId::new(2), &faults);
        assert_eq!(truth.finite(), Some(11));
        let dd = d.finite().unwrap();
        assert!((11..=22).contains(&dd));
    }

    #[test]
    fn unit_weights_match_plain_graph() {
        let edges = &[(0u32, 1u32, 1u32), (1, 2, 1), (2, 0, 1)];
        let oracle = WeightedOracle::new(3, edges, 1.0);
        assert_eq!(oracle.subdivision().num_vertices(), 3);
        assert_eq!(
            oracle
                .distance(NodeId::new(0), NodeId::new(2), &WeightedFaults::none())
                .finite(),
            Some(1)
        );
    }

    #[test]
    fn subdivision_sizes() {
        let oracle = WeightedOracle::new(2, &[(0, 1, 5)], 1.0);
        assert_eq!(oracle.subdivision().num_vertices(), 2 + 4);
        assert_eq!(oracle.subdivision().num_edges(), 5);
        assert_eq!(oracle.num_vertices(), 2);
    }

    #[test]
    #[should_panic(expected = "not a weighted edge")]
    fn unknown_edge_fault_rejected() {
        let oracle = WeightedOracle::new(3, &[(0, 1, 2)], 1.0);
        let faults = WeightedFaults {
            vertices: vec![],
            edges: vec![(NodeId::new(0), NodeId::new(2))],
        };
        let _ = oracle.distance(NodeId::new(0), NodeId::new(1), &faults);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = WeightedOracle::new(2, &[(0, 1, 0)], 1.0);
    }

    #[test]
    fn try_distance_returns_typed_errors() {
        let oracle = WeightedOracle::new(3, &[(0, 1, 2), (1, 2, 3)], 1.0);
        let bad_edge = WeightedFaults {
            vertices: vec![],
            edges: vec![(NodeId::new(0), NodeId::new(2))],
        };
        assert_eq!(
            oracle.try_distance(NodeId::new(0), NodeId::new(1), &bad_edge),
            Err(OracleError::FaultEdgeNotInGraph {
                a: NodeId::new(0),
                b: NodeId::new(2)
            })
        );
        // Auxiliary subdivision vertices are not part of the weighted world.
        let aux = NodeId::new(3);
        assert_eq!(
            oracle.try_distance(NodeId::new(0), aux, &WeightedFaults::none()),
            Err(OracleError::VertexOutOfRange { v: aux, n: 3 })
        );
        let bad_fault = WeightedFaults {
            vertices: vec![aux],
            edges: vec![],
        };
        assert_eq!(
            oracle.try_distance(NodeId::new(0), NodeId::new(1), &bad_fault),
            Err(OracleError::VertexOutOfRange { v: aux, n: 3 })
        );
        // Well-formed queries agree with the panicking API.
        let good = WeightedFaults {
            vertices: vec![],
            edges: vec![(NodeId::new(0), NodeId::new(1))],
        };
        assert_eq!(
            oracle.try_distance(NodeId::new(0), NodeId::new(1), &good),
            Ok(oracle.distance(NodeId::new(0), NodeId::new(1), &good))
        );
    }
}
