//! Label-corruption chaos tests: the decoder is a wire-format consumer
//! and must never panic, never loop, and never *underestimate* a
//! forbidden-set distance, no matter what happens to the bytes in
//! flight.
//!
//! Three layers of attack, all deterministic (seeds printed on
//! failure):
//!
//! 1. exhaustive structural mutations (every single-bit flip, every
//!    truncation length, trailing garbage) on real labels;
//! 2. scheduled mixed sweeps (`corrupt::corruption_sweep`) with splices
//!    and varint-boundary hits, checked against BFS ground truth;
//! 3. pure byte-noise fuzzing of `codec::decode`.

use fsdl_graph::{bfs, generators, FaultSet, Graph, NodeId};
use fsdl_labels::{codec, corrupt, query, ForbiddenSetOracle, QueryLabels};
use fsdl_testkit::Rng;

/// Asserts the decode-or-sound contract for one mutated bit string,
/// using `(s, t)` as the query pair. Returns `true` when the mutant
/// decoded.
fn assert_decode_or_sound(
    oracle: &ForbiddenSetOracle,
    g: &Graph,
    bytes: &[u8],
    bits: usize,
    s: NodeId,
    t: NodeId,
    context: &str,
) -> bool {
    let n = g.num_vertices();
    match codec::decode(bytes, bits, n) {
        Err(_) => false,
        Ok(decoded) => {
            let fprime = decoded.owner;
            let ls = oracle.label(s);
            let lt = oracle.label(t);
            let faults = QueryLabels {
                fault_vertices: vec![&decoded],
                fault_edges: vec![],
            };
            let answer = query(oracle.params(), &ls, &lt, &faults);
            let truth = bfs::pair_distance_avoiding(g, s, t, &FaultSet::from_vertices([fprime]));
            if let (Some(a), Some(td)) = (answer.distance.finite(), truth.finite()) {
                assert!(
                    a >= td || s == fprime || t == fprime,
                    "{context}: decoded owner {fprime}, answer {a} underestimates truth {td}"
                );
            }
            true
        }
    }
}

/// Every single-bit flip of every vertex label on a grid: each must be
/// rejected (checksum) or remain sound. This is the exhaustive version
/// of corruption class (1).
#[test]
fn exhaustive_bit_flips_grid() {
    let g = generators::grid2d(5, 5);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let (s, t) = (NodeId::new(0), NodeId::new(24));
    let mut decoded_ok = 0usize;
    for v in 0..n {
        let enc = codec::encode(&oracle.label(NodeId::from_index(v)), n);
        let bits = enc.len_bits();
        for flip in 0..bits {
            let mut bytes = enc.as_bytes().to_vec();
            bytes[flip / 8] ^= 1 << (flip % 8);
            if assert_decode_or_sound(
                &oracle,
                &g,
                &bytes,
                bits,
                s,
                t,
                &format!("label {v} bit {flip}"),
            ) {
                decoded_ok += 1;
            }
        }
    }
    // A 32-bit checksum admits a ~2^-32 collision per flip; across a few
    // thousand flips, every one should be rejected.
    assert_eq!(decoded_ok, 0, "single-bit flips must never survive");
}

/// Every truncation length of several labels: never a panic, never an
/// accepted prefix (length is mixed into the checksum).
#[test]
fn exhaustive_truncations_cycle() {
    let g = generators::cycle(32);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    for v in [0u32, 7, 19] {
        let enc = codec::encode(&oracle.label(NodeId::new(v)), n);
        for keep in 0..enc.len_bits() {
            let (bytes, bits) =
                corrupt::Mutation::Truncate(keep).apply(enc.as_bytes(), enc.len_bits(), None);
            assert!(
                codec::decode(&bytes, bits, n).is_err(),
                "label {v}: truncation to {keep} bits decoded"
            );
        }
    }
}

/// Trailing garbage after a valid label must be rejected, bit by bit.
#[test]
fn trailing_garbage_rejected() {
    let g = generators::grid2d(4, 4);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let enc = codec::encode(&oracle.label(NodeId::new(5)), n);
    for extra in 1..80usize {
        let m = corrupt::Mutation::Extend {
            extra_bits: extra,
            seed: extra as u64,
        };
        let (bytes, bits) = m.apply(enc.as_bytes(), enc.len_bits(), None);
        assert!(
            codec::decode(&bytes, bits, n).is_err(),
            "{extra} trailing bits decoded"
        );
    }
}

/// Splices between two valid label encodings at varint-group stride.
/// Only the degenerate whole-donor splice can survive the checksum, and
/// when it does the answer must stay sound.
#[test]
fn splice_matrix_stays_sound() {
    let g = generators::grid2d(5, 5);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let (s, t) = (NodeId::new(2), NodeId::new(22));
    let victim = codec::encode(&oracle.label(NodeId::new(12)), n);
    let donor = codec::encode(&oracle.label(NodeId::new(17)), n);
    let mut survivors = 0usize;
    for prefix in (0..victim.len_bits()).step_by(5) {
        for skip in (0..donor.len_bits()).step_by(35) {
            let m = corrupt::Mutation::Splice {
                prefix_bits: prefix,
                donor_skip: skip,
            };
            let (bytes, bits) = m.apply(
                victim.as_bytes(),
                victim.len_bits(),
                Some((donor.as_bytes(), donor.len_bits())),
            );
            if assert_decode_or_sound(
                &oracle,
                &g,
                &bytes,
                bits,
                s,
                t,
                &format!("splice prefix={prefix} skip={skip}"),
            ) {
                survivors += 1;
            }
        }
    }
    // The (0, 0) splice is exactly the donor label and must decode.
    assert!(survivors >= 1, "whole-donor splice should decode");
}

/// Scheduled mixed sweeps on additional families beyond the family
/// matrix, with randomized query pairs.
#[test]
fn scheduled_sweeps_random_pairs() {
    let cases: &[(Graph, f64)] = &[
        (generators::king_grid(5, 5), 1.0),
        (generators::balanced_tree(3, 3), 1.0),
        (generators::random_geometric(60, 0.2, 9), 1.0),
    ];
    for (gi, (g, eps)) in cases.iter().enumerate() {
        let oracle = ForbiddenSetOracle::new(g, *eps);
        let n = g.num_vertices();
        fsdl_testkit::check(&format!("scheduled_sweep_{gi}"), 4, |rng| {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let fault = NodeId::from_index(rng.gen_range(0..n));
            let donor = NodeId::from_index(rng.gen_range(0..n));
            let seed = rng.next_u64();
            let stats = corrupt::corruption_sweep(&oracle, s, t, fault, donor, 250, seed);
            assert_eq!(stats.attempted, stats.rejected + stats.decoded_sound);
        });
    }
}

/// Pure byte-noise fuzzing: `decode` on arbitrary bytes with arbitrary
/// declared lengths must return (never panic, never hang).
#[test]
fn random_bytes_never_panic() {
    fsdl_testkit::check("random_bytes_never_panic", 2000, |rng| {
        let len = rng.gen_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        // Declared bit length may exceed the buffer (decoder must reject,
        // not panic) or undershoot it.
        let bits = rng.gen_range(0..=len * 8 + 64);
        let n = rng.gen_range(1..2000usize);
        let _ = codec::decode(&bytes, bits, n);
    });
}

/// Soak-mode chaos: a larger scheduled sweep, `#[ignore]`d by default;
/// the CI soak job runs it with `FSDL_TESTKIT_SOAK` scaling.
#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_corruption_sweep() {
    let g = generators::grid2d(8, 8);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let rounds = 20 * fsdl_testkit::soak_multiplier();
    let mut rng = Rng::seed_from_u64(0x50A4_C0DE);
    for round in 0..rounds {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let fault = NodeId::from_index(rng.gen_range(0..n));
        let donor = NodeId::from_index(rng.gen_range(0..n));
        let seed = rng.next_u64();
        let stats = corrupt::corruption_sweep(&oracle, s, t, fault, donor, 1000, seed);
        assert_eq!(
            stats.attempted,
            stats.rejected + stats.decoded_sound,
            "round {round} seed {seed:#x}"
        );
    }
}
