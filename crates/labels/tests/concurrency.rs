//! Concurrency smoke tests: one shared [`ForbiddenSetOracle`] hammered from
//! many threads must give bit-identical answers to a single-threaded run.
//!
//! The oracle's label arena is a `OnceLock<Arc<Label>>` slot table —
//! concurrent `label()` calls may race to materialize a label, but exactly
//! one wins and label construction is deterministic, so every thread
//! observes identical content. These tests exercise that path under real
//! contention (cold arena, many threads, overlapping queries) and pin the
//! `Send + Sync` bounds at compile time.

use std::sync::Arc;

use fsdl_graph::{generators, Dist, FaultSet, NodeId};
use fsdl_labels::{
    DynamicOracle, ForbiddenSetOracle, Label, Labeling, OracleError, QueryAnswer, SchemeParams,
    WeightedOracle,
};
use fsdl_testkit::Rng;

const THREADS: usize = 8;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn oracle_types_are_send_and_sync() {
    assert_send_sync::<ForbiddenSetOracle>();
    assert_send_sync::<Arc<ForbiddenSetOracle>>();
    assert_send_sync::<Labeling>();
    assert_send_sync::<Label>();
    assert_send_sync::<SchemeParams>();
    assert_send_sync::<OracleError>();
    assert_send_sync::<DynamicOracle>();
    assert_send_sync::<WeightedOracle>();
}

/// A deterministic mixed workload: vertex faults, edge faults, and
/// failure-free queries over a 6×6 grid.
fn workload(n: usize, queries: usize) -> Vec<(NodeId, NodeId, FaultSet)> {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let mut out = Vec::with_capacity(queries);
    for _ in 0..queries {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let mut f = FaultSet::empty();
        for _ in 0..rng.gen_range(0..3usize) {
            let v = NodeId::from_index(rng.gen_range(0..n));
            if v != s && v != t {
                f.forbid_vertex(v);
            }
        }
        out.push((s, t, f));
    }
    out
}

#[test]
fn shared_oracle_hammered_from_threads_matches_sequential() {
    let g = generators::grid2d(6, 6);
    let n = g.num_vertices();
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let queries = workload(n, 96);

    // Ground truth from a cold oracle, single-threaded.
    let expected: Vec<QueryAnswer> = queries
        .iter()
        .map(|(s, t, f)| oracle.query(*s, *t, f))
        .collect();

    // A *fresh* oracle with a cold arena, shared by reference across
    // THREADS threads that interleave label materialization and queries.
    let hammered = ForbiddenSetOracle::new(&g, 0.5);
    let answers: Vec<Vec<QueryAnswer>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|k| {
                let oracle = &hammered;
                let queries = &queries;
                scope.spawn(move || {
                    // Stagger starting offsets so threads contend on
                    // different labels first, then sweep the full set.
                    let off = k * queries.len() / THREADS;
                    (0..queries.len())
                        .map(|j| {
                            let (s, t, f) = &queries[(off + j) % queries.len()];
                            oracle.query(*s, *t, f)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (k, per_thread) in answers.iter().enumerate() {
        for (j, answer) in per_thread.iter().enumerate() {
            let idx = (k * queries.len() / THREADS + j) % queries.len();
            assert_eq!(answer, &expected[idx], "thread {k} query {idx}");
        }
    }
}

#[test]
fn query_batch_is_bit_identical_to_sequential() {
    let g = generators::random_geometric(80, 0.2, 7);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let queries = workload(g.num_vertices(), 64);

    let sequential: Vec<QueryAnswer> = queries
        .iter()
        .map(|(s, t, f)| oracle.query(*s, *t, f))
        .collect();
    for workers in [1, 2, 4, 8] {
        let batched = oracle.query_batch_workers(&queries, workers);
        assert_eq!(batched, sequential, "workers = {workers}");
    }
    assert_eq!(oracle.query_batch(&queries), sequential);
}

#[test]
fn concurrent_label_reads_share_one_arc() {
    let g = generators::cycle(32);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let v = NodeId::new(17);
    let labels: Vec<Arc<Label>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| scope.spawn(|| oracle.label(v)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for l in &labels[1..] {
        assert!(
            Arc::ptr_eq(&labels[0], l),
            "racing label() calls must settle on one arena slot"
        );
    }
    assert_eq!(labels[0].owner, v);
}

#[test]
fn parallel_build_then_serve_matches_cold_oracle() {
    let g = generators::grid2d(5, 5);
    let cold = ForbiddenSetOracle::new(&g, 0.5);
    let warm = ForbiddenSetOracle::new(&g, 0.5);
    warm.prewarm_workers(4);
    let f = FaultSet::from_vertices([NodeId::new(12)]);
    for s in 0..g.num_vertices() {
        let s = NodeId::from_index(s);
        let a = warm.query(s, NodeId::new(24), &f);
        let b = cold.query(s, NodeId::new(24), &f);
        assert_eq!(a, b);
    }
}

#[test]
fn hammered_distances_are_sound_and_connected_agree() {
    // Cross-check a concurrent run against graph-side truth: answers are
    // finite iff connected, and queries ignoring malformed faults still
    // agree across threads.
    let g = generators::cycle(24);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let mut faults = FaultSet::empty();
    faults.forbid_vertex(NodeId::new(3));
    faults.forbid_vertex(NodeId::new(200)); // out of range: ignored exactly
    let expected: Vec<Dist> = (0..24)
        .map(|t| oracle.distance(NodeId::new(0), NodeId::new(t), &faults))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let oracle = &oracle;
            let faults = &faults;
            let expected = &expected;
            scope.spawn(move || {
                for t in 0..24 {
                    let d = oracle.distance(NodeId::new(0), NodeId::new(t), faults);
                    assert_eq!(d, expected[t as usize]);
                    assert_eq!(
                        d != Dist::INFINITE,
                        oracle.connected(NodeId::new(0), NodeId::new(t), faults)
                    );
                }
            });
        }
    });
}
