//! Property tests for the extension layers: the dynamic oracle under random
//! update/query interleavings, the weighted oracle against Dijkstra, and
//! the pruned-vs-all-pairs label equivalence.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::{
    DynamicOracle, ForbiddenSetOracle, Labeling, LabelingOptions, SchemeParams, WeightedFaults,
    WeightedOracle,
};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n - 1),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..14),
        )
            .prop_map(move |(parents, extra)| {
                let mut b = GraphBuilder::new(n);
                for (i, p) in parents.iter().enumerate().skip(1) {
                    b.add_edge((p % i) as u32, i as u32).expect("in range");
                }
                for (a, c) in extra {
                    if a != c {
                        b.add_edge(a, c).expect("in range");
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dynamic_oracle_tracks_truth(
        g in arb_connected_graph(18),
        script in proptest::collection::vec((0u8..4, 0u32..18, 0u32..18), 1..20),
        threshold in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, threshold);
        let mut live_faults = FaultSet::empty();
        for (op, a, b) in script {
            let a = NodeId::new(a % n);
            let b = NodeId::new(b % n);
            match op {
                0 => {
                    oracle.delete_vertex(a);
                    live_faults.forbid_vertex(a);
                }
                1 => {
                    oracle.restore_vertex(a);
                    live_faults.permit_vertex(a);
                }
                2 => {
                    if g.has_edge(a, b) {
                        oracle.delete_edge(a, b);
                        live_faults.forbid_edge_unchecked(a, b);
                    }
                }
                _ => {
                    // Query and verify against truth.
                    let got = oracle.distance(a, b);
                    let truth = bfs::pair_distance_avoiding(&g, a, b, &live_faults);
                    match truth.finite() {
                        None => prop_assert!(got.is_infinite(), "invented path {a}->{b}"),
                        Some(td) => {
                            let gd = got.finite().expect("missed path");
                            prop_assert!(gd >= td);
                            prop_assert!(f64::from(gd) <= 2.0 * f64::from(td) + 1e-9);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_oracle_matches_dijkstra(
        g in arb_connected_graph(14),
        weights_seed in 0u64..1000,
        fault_pick in 0u32..14,
        s_pick in 0u32..14,
        t_pick in 0u32..14,
    ) {
        use rand::{Rng, SeedableRng};
        let n = g.num_vertices();
        let mut rng = rand::rngs::StdRng::seed_from_u64(weights_seed);
        let edges: Vec<(u32, u32, u32)> = g
            .edges()
            .map(|e| (e.lo().raw(), e.hi().raw(), rng.gen_range(1..=3u32)))
            .collect();
        let oracle = WeightedOracle::new(n, &edges, 1.0);
        let s = NodeId::new(s_pick % n as u32);
        let t = NodeId::new(t_pick % n as u32);
        let fv = NodeId::new(fault_pick % n as u32);
        let faults = if fv == s || fv == t {
            WeightedFaults::none()
        } else {
            WeightedFaults { vertices: vec![fv], edges: vec![] }
        };
        // Ground truth: Dijkstra over the triples.
        let truth = {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
            for &(u, v, w) in &edges {
                if faults.vertices.contains(&NodeId::new(u))
                    || faults.vertices.contains(&NodeId::new(v))
                {
                    continue;
                }
                adj[u as usize].push((v as usize, u64::from(w)));
                adj[v as usize].push((u as usize, u64::from(w)));
            }
            let mut dist = vec![u64::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[s.index()] = 0;
            heap.push(Reverse((0u64, s.index())));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] { continue; }
                for &(v, w) in &adj[u] {
                    if d + w < dist[v] {
                        dist[v] = d + w;
                        heap.push(Reverse((d + w, v)));
                    }
                }
            }
            dist[t.index()]
        };
        let got = oracle.distance(s, t, &faults);
        match truth {
            u64::MAX => prop_assert!(got.is_infinite()),
            td => {
                let gd = got.finite().expect("missed weighted path");
                prop_assert!(u64::from(gd) >= td);
                prop_assert!(f64::from(gd) <= 2.0 * td as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn all_pairs_labels_never_worse(
        g in arb_connected_graph(14),
        fault_pick in 0u32..14,
        s_pick in 0u32..14,
        t_pick in 0u32..14,
    ) {
        // The paper-literal all-pairs labels produce a superset sketch, so
        // their answers are <= the pruned answers, and both stay sound.
        let n = g.num_vertices() as u32;
        let params = SchemeParams::new(1.0, n as usize);
        let pruned = ForbiddenSetOracle::from_labeling(Labeling::build_with_options(
            &g,
            params.clone(),
            LabelingOptions { all_pairs: false },
        ));
        let full = ForbiddenSetOracle::from_labeling(Labeling::build_with_options(
            &g,
            params,
            LabelingOptions { all_pairs: true },
        ));
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let fv = NodeId::new(fault_pick % n);
        let faults = if fv == s || fv == t {
            FaultSet::empty()
        } else {
            FaultSet::from_vertices([fv])
        };
        let dp = pruned.distance(s, t, &faults);
        let df = full.distance(s, t, &faults);
        prop_assert!(df <= dp, "all-pairs answer {df} worse than pruned {dp}");
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => {
                prop_assert!(dp.is_infinite());
                prop_assert!(df.is_infinite());
            }
            Some(td) => {
                prop_assert!(df.finite().expect("sound") >= td);
                prop_assert!(f64::from(dp.finite().expect("sound")) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    }
}
