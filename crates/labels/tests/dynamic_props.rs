//! Property tests for the extension layers: the dynamic oracle under random
//! update/query interleavings, the weighted oracle against Dijkstra, and
//! the pruned-vs-all-pairs label equivalence.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::{
    DynamicError, DynamicOracle, ForbiddenSetOracle, Labeling, LabelingOptions, SchemeParams,
    WeightedFaults, WeightedOracle,
};
use fsdl_testkit::Rng;

/// A random connected graph on `3..max_n` vertices: a random spanning
/// tree plus a handful of extra edges.
fn random_connected_graph(rng: &mut Rng, max_n: usize) -> Graph {
    let n = rng.gen_range(3..max_n);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as u32, i as u32).expect("in range");
    }
    let extra = rng.gen_range(0..14usize);
    for _ in 0..extra {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

#[test]
fn dynamic_oracle_tracks_truth() {
    fsdl_testkit::check("dynamic_oracle_tracks_truth", 16, |rng| {
        let g = random_connected_graph(rng, 18);
        let n = g.num_vertices() as u32;
        let threshold = rng.gen_range(1usize..6);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, threshold);
        let mut live_faults = FaultSet::empty();
        let steps = rng.gen_range(1..20usize);
        for _ in 0..steps {
            let op = rng.gen_range(0u32..4);
            let a = NodeId::new(rng.gen_range(0..n));
            let b = NodeId::new(rng.gen_range(0..n));
            match op {
                0 => {
                    oracle.delete_vertex(a).expect("in range");
                    live_faults.forbid_vertex(a);
                }
                1 => {
                    // Restoring a vertex that was never deleted is a typed
                    // error; restoring a live fault must succeed.
                    match oracle.restore_vertex(a) {
                        Ok(()) => {
                            live_faults.permit_vertex(a);
                        }
                        Err(e) => assert_eq!(e, DynamicError::VertexNotDeleted { v: a }),
                    }
                }
                2 => {
                    if g.has_edge(a, b) {
                        oracle.delete_edge(a, b).expect("edge exists");
                        live_faults.forbid_edge_unchecked(a, b);
                    }
                }
                _ => {
                    // Query and verify against truth.
                    let got = oracle.distance(a, b);
                    let truth = bfs::pair_distance_avoiding(&g, a, b, &live_faults);
                    match truth.finite() {
                        None => assert!(got.is_infinite(), "invented path {a}->{b}"),
                        Some(td) => {
                            let gd = got.finite().expect("missed path");
                            assert!(gd >= td);
                            assert!(f64::from(gd) <= 2.0 * f64::from(td) + 1e-9);
                        }
                    }
                }
            }
        }
    });
}

/// The update API rejects garbage instead of panicking: out-of-range
/// vertices, non-edges, and restores of never-deleted faults all come
/// back as typed `DynamicError`s, and the oracle keeps answering
/// correctly afterwards.
#[test]
fn dynamic_update_errors_leave_oracle_usable() {
    fsdl_testkit::check("dynamic_update_errors_leave_oracle_usable", 8, |rng| {
        let g = random_connected_graph(rng, 14);
        let n = g.num_vertices() as u32;
        let mut oracle = DynamicOracle::new(&g, 1.0);

        let beyond = NodeId::new(n + rng.gen_range(0..5u32));
        assert_eq!(
            oracle.delete_vertex(beyond),
            Err(DynamicError::VertexOutOfRange {
                v: beyond,
                n: n as usize
            })
        );
        assert_eq!(
            oracle.restore_vertex(beyond),
            Err(DynamicError::VertexOutOfRange {
                v: beyond,
                n: n as usize
            })
        );

        let a = NodeId::new(rng.gen_range(0..n));
        assert_eq!(
            oracle.restore_vertex(a),
            Err(DynamicError::VertexNotDeleted { v: a })
        );

        // Find a non-edge if one exists.
        let b = NodeId::new(rng.gen_range(0..n));
        if a != b && !g.has_edge(a, b) {
            assert_eq!(
                oracle.delete_edge(a, b),
                Err(DynamicError::NotAnEdge { a, b })
            );
            assert_eq!(
                oracle.restore_edge(a, b),
                Err(DynamicError::EdgeNotDeleted { a, b })
            );
        }

        // After all the rejected updates, failure-free answers still match
        // BFS soundness.
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let got = oracle.distance(s, t);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
        match truth.finite() {
            None => assert!(got.is_infinite()),
            Some(td) => {
                let gd = got.finite().expect("missed path");
                assert!(gd >= td);
                assert!(f64::from(gd) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    });
}

#[test]
fn weighted_oracle_matches_dijkstra() {
    fsdl_testkit::check("weighted_oracle_matches_dijkstra", 16, |rng| {
        let g = random_connected_graph(rng, 14);
        let n = g.num_vertices();
        let edges: Vec<(u32, u32, u32)> = g
            .edges()
            .map(|e| (e.lo().raw(), e.hi().raw(), rng.gen_range(1..=3u32)))
            .collect();
        let oracle = WeightedOracle::new(n, &edges, 1.0);
        let s = NodeId::new(rng.gen_range(0..n as u32));
        let t = NodeId::new(rng.gen_range(0..n as u32));
        let fv = NodeId::new(rng.gen_range(0..n as u32));
        let faults = if fv == s || fv == t {
            WeightedFaults::none()
        } else {
            WeightedFaults {
                vertices: vec![fv],
                edges: vec![],
            }
        };
        // Ground truth: Dijkstra over the triples.
        let truth = {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
            for &(u, v, w) in &edges {
                if faults.vertices.contains(&NodeId::new(u))
                    || faults.vertices.contains(&NodeId::new(v))
                {
                    continue;
                }
                adj[u as usize].push((v as usize, u64::from(w)));
                adj[v as usize].push((u as usize, u64::from(w)));
            }
            let mut dist = vec![u64::MAX; n];
            let mut heap = BinaryHeap::new();
            dist[s.index()] = 0;
            heap.push(Reverse((0u64, s.index())));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    if d + w < dist[v] {
                        dist[v] = d + w;
                        heap.push(Reverse((d + w, v)));
                    }
                }
            }
            dist[t.index()]
        };
        let got = oracle.distance(s, t, &faults);
        match truth {
            u64::MAX => assert!(got.is_infinite()),
            td => {
                let gd = got.finite().expect("missed weighted path");
                assert!(u64::from(gd) >= td);
                assert!(f64::from(gd) <= 2.0 * td as f64 + 1e-9);
            }
        }
    });
}

#[test]
fn all_pairs_labels_never_worse() {
    fsdl_testkit::check("all_pairs_labels_never_worse", 16, |rng| {
        // The paper-literal all-pairs labels produce a superset sketch, so
        // their answers are <= the pruned answers, and both stay sound.
        let g = random_connected_graph(rng, 14);
        let n = g.num_vertices() as u32;
        let params = SchemeParams::new(1.0, n as usize);
        let pruned = ForbiddenSetOracle::from_labeling(Labeling::build_with_options(
            &g,
            params.clone(),
            LabelingOptions { all_pairs: false },
        ));
        let full = ForbiddenSetOracle::from_labeling(Labeling::build_with_options(
            &g,
            params,
            LabelingOptions { all_pairs: true },
        ));
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let fv = NodeId::new(rng.gen_range(0..n));
        let faults = if fv == s || fv == t {
            FaultSet::empty()
        } else {
            FaultSet::from_vertices([fv])
        };
        let dp = pruned.distance(s, t, &faults);
        let df = full.distance(s, t, &faults);
        assert!(df <= dp, "all-pairs answer {df} worse than pruned {dp}");
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => {
                assert!(dp.is_infinite());
                assert!(df.is_infinite());
            }
            Some(td) => {
                assert!(df.finite().expect("sound") >= td);
                assert!(f64::from(dp.finite().expect("sound")) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    });
}
