//! Exhaustive verification on tiny graphs: every labeled graph on up to 4
//! vertices (and a sample of the 1024 graphs on 5), every query pair, and
//! every fault set of size ≤ 2 — the decoder must be sound and within
//! stretch on *all* of them, including disconnected and degenerate shapes
//! the random suites rarely hit.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::ForbiddenSetOracle;

/// Builds the graph on `n` vertices selected by `mask` over the `n(n-1)/2`
/// possible edges (lexicographic pair order).
fn graph_from_mask(n: usize, mask: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut bit = 0;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if (mask >> bit) & 1 == 1 {
                b.add_edge(i, j).expect("valid edge");
            }
            bit += 1;
        }
    }
    b.build()
}

/// Checks every (s, t, F) combination with |F| <= 2 vertex faults and every
/// single edge fault on `g`.
fn verify_graph(g: &Graph, eps: f64) {
    let oracle = ForbiddenSetOracle::new(g, eps);
    let check = |s: NodeId, t: NodeId, f: &FaultSet| {
        let answer = oracle.distance(s, t, f);
        let truth = bfs::pair_distance_avoiding(g, s, t, f);
        match truth.finite() {
            None => assert!(
                answer.is_infinite(),
                "invented path {s}->{t} with F={f:?} on {g:?}"
            ),
            Some(td) => {
                let ad = answer
                    .finite()
                    .unwrap_or_else(|| panic!("missed path {s}->{t} with F={f:?} on {g:?}"));
                assert!(ad >= td, "unsound {ad} < {td} for {s}->{t} on {g:?}");
                assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "stretch {ad}/{td} for {s}->{t} with F={f:?} on {g:?}"
                );
            }
        }
    };
    let vertices: Vec<NodeId> = g.vertices().collect();
    for &s in &vertices {
        for &t in &vertices {
            // |F| = 0.
            check(s, t, &FaultSet::empty());
            // |F| = 1 and 2 vertex faults.
            for &f1 in &vertices {
                if f1 == s || f1 == t {
                    continue;
                }
                check(s, t, &FaultSet::from_vertices([f1]));
                for &f2 in &vertices {
                    if f2 == s || f2 == t || f2 == f1 {
                        continue;
                    }
                    check(s, t, &FaultSet::from_vertices([f1, f2]));
                }
            }
            // Single edge faults.
            for e in g.edges() {
                check(s, t, &FaultSet::from_edges(g, [(e.lo(), e.hi())]));
            }
        }
    }
}

#[test]
fn all_graphs_on_three_vertices() {
    for mask in 0..8u64 {
        verify_graph(&graph_from_mask(3, mask), 1.0);
    }
}

#[test]
fn all_graphs_on_four_vertices() {
    for mask in 0..64u64 {
        verify_graph(&graph_from_mask(4, mask), 1.0);
    }
}

#[test]
fn sampled_graphs_on_five_vertices() {
    // Every 7th of the 1024 graphs on 5 labeled vertices, plus the extremes.
    for mask in (0..1024u64).step_by(7).chain([0, 1023]) {
        verify_graph(&graph_from_mask(5, mask), 1.0);
    }
}

#[test]
#[ignore = "full 5-vertex enumeration; run with --ignored"]
fn all_graphs_on_five_vertices() {
    for mask in 0..1024u64 {
        verify_graph(&graph_from_mask(5, mask), 1.0);
    }
}

#[test]
fn all_graphs_on_four_vertices_tight_eps() {
    // The tightest schedule anyone would run (c = 6).
    for mask in (0..64u64).step_by(3) {
        verify_graph(&graph_from_mask(4, mask), 0.1);
    }
}
