//! Family coverage matrix: every generator family the substrate ships gets
//! scheme-level behavioural checks — failure-free accuracy, single faults
//! around the structural center, and connectivity agreement — so no family
//! is "generate-only".

use fsdl_graph::{bfs, generators, FaultSet, Graph, NodeId};
use fsdl_labels::{corrupt, ForbiddenSetOracle};

/// Corruption sweep for one family: >= 1000 scheduled mutations of an
/// encoded fault label, each of which must either fail decoding with a
/// typed `CodecError` or decode to a valid label whose query answer is
/// still sound. `corrupt::corruption_sweep` panics with the seed and the
/// offending mutation on any violation.
fn corrupt_family(g: &Graph, eps: f64, seed: u64) {
    let oracle = ForbiddenSetOracle::new(g, eps);
    let n = g.num_vertices();
    assert!(n >= 4, "family too small for a corruption sweep");
    let s = NodeId::new(0);
    let t = NodeId::from_index(n / 2);
    let fault = NodeId::from_index(n / 3);
    let donor = NodeId::from_index(2 * n / 3);
    let stats = corrupt::corruption_sweep(&oracle, s, t, fault, donor, 1000, seed);
    assert!(
        stats.attempted >= 990,
        "sweep seed {seed:#x}: only {} mutations attempted",
        stats.attempted
    );
    assert_eq!(
        stats.attempted,
        stats.rejected + stats.decoded_sound,
        "sweep seed {seed:#x}: unaccounted outcomes in {stats:?}"
    );
}

/// Shared checker: samples (s, t) pairs with the given fault set and
/// asserts soundness + stretch + exact disconnection reporting.
fn check_family(g: &Graph, eps: f64, faults: &FaultSet, s_step: usize, t_step: usize) {
    let oracle = ForbiddenSetOracle::new(g, eps);
    let n = g.num_vertices() as u32;
    for s in (0..n).step_by(s_step) {
        for t in (0..n).step_by(t_step) {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            if faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t) {
                continue;
            }
            let answer = oracle.distance(s, t, faults);
            let truth = bfs::pair_distance_avoiding(g, s, t, faults);
            match truth.finite() {
                None => assert!(answer.is_infinite(), "{s}->{t} invented"),
                Some(td) => {
                    let ad = answer.finite().unwrap_or_else(|| panic!("{s}->{t} missed"));
                    assert!(ad >= td, "{s}->{t}: {ad} < {td}");
                    assert!(
                        f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                        "{s}->{t}: stretch {ad}/{td}"
                    );
                }
            }
        }
    }
}

fn center_fault(g: &Graph) -> FaultSet {
    FaultSet::from_vertices([NodeId::from_index(g.num_vertices() / 2)])
}

#[test]
fn torus2d_family() {
    let g = generators::torus2d(6, 6);
    corrupt_family(&g, 1.0, 0xFA01);
    check_family(&g, 1.0, &FaultSet::empty(), 5, 7);
    check_family(&g, 1.0, &center_fault(&g), 5, 7);
}

#[test]
fn torus3d_family() {
    let g = generators::torus3d(3, 3, 4);
    corrupt_family(&g, 2.0, 0xFA02);
    check_family(&g, 2.0, &FaultSet::empty(), 3, 5);
    check_family(&g, 2.0, &center_fault(&g), 3, 5);
}

#[test]
fn road_network_family() {
    let g = generators::road_network(8, 8, 0.2, 3);
    corrupt_family(&g, 1.0, 0xFA03);
    check_family(&g, 1.0, &FaultSet::empty(), 5, 7);
    check_family(&g, 1.0, &center_fault(&g), 5, 7);
}

#[test]
fn grid_with_holes_family() {
    // A courtyard: the 2x2 center block is missing.
    let g = generators::grid2d_with_holes(8, 8, |x, y| (3..5).contains(&x) && (3..5).contains(&y));
    corrupt_family(&g, 1.0, 0xFA04);
    // Skip hole cells as endpoints (they are isolated).
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let f = FaultSet::from_vertices([NodeId::new(11)]);
    for s in (0..64u32).step_by(5) {
        for t in (0..64u32).step_by(7) {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            if f.is_vertex_faulty(s) || f.is_vertex_faulty(t) {
                continue;
            }
            let answer = oracle.distance(s, t, &f);
            let truth = bfs::pair_distance_avoiding(&g, s, t, &f);
            assert_eq!(answer.is_finite(), truth.is_finite(), "{s}->{t}");
            if let (Some(a), Some(td)) = (answer.finite(), truth.finite()) {
                assert!(a >= td && f64::from(a) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    }
}

#[test]
fn spider_family() {
    let g = generators::spider(5, 8);
    corrupt_family(&g, 1.0, 0xFA05);
    check_family(&g, 1.0, &FaultSet::empty(), 3, 4);
    // Fault the hub: everything disconnects across legs.
    let hub = FaultSet::from_vertices([NodeId::new(0)]);
    check_family(&g, 1.0, &hub, 3, 4);
}

#[test]
fn ladder_family() {
    let g = generators::ladder(16);
    corrupt_family(&g, 0.5, 0xFA06);
    check_family(&g, 0.5, &FaultSet::empty(), 3, 5);
    check_family(&g, 0.5, &center_fault(&g), 3, 5);
}

#[test]
fn lollipop_family() {
    let g = generators::lollipop(6, 10);
    corrupt_family(&g, 1.0, 0xFA07);
    check_family(&g, 1.0, &FaultSet::empty(), 2, 3);
    // Fault the clique-tail joint.
    check_family(&g, 1.0, &FaultSet::from_vertices([NodeId::new(5)]), 2, 3);
}

#[test]
fn barbell_family() {
    let g = generators::barbell(5, 4);
    corrupt_family(&g, 1.0, 0xFA08);
    check_family(&g, 1.0, &FaultSet::empty(), 2, 3);
    // Fault the middle of the bridge.
    check_family(&g, 1.0, &FaultSet::from_vertices([NodeId::new(7)]), 2, 3);
}

#[test]
fn linf_grid_family() {
    let g = generators::grid_linf(4, 3);
    corrupt_family(&g, 2.0, 0xFA09);
    check_family(&g, 2.0, &FaultSet::empty(), 5, 7);
    check_family(&g, 2.0, &center_fault(&g), 5, 7);
}

#[test]
fn half_grid_family() {
    let g = generators::half_grid(4, 4);
    corrupt_family(&g, 3.0, 0xFA0A);
    check_family(&g, 3.0, &FaultSet::empty(), 17, 23);
    check_family(&g, 3.0, &center_fault(&g), 17, 23);
}

#[test]
fn hypercube_contrast_family() {
    // alpha ~ log n: still correct, just expensive — tiny instance.
    let g = generators::hypercube(4);
    corrupt_family(&g, 2.0, 0xFA0B);
    check_family(&g, 2.0, &FaultSet::empty(), 3, 5);
    check_family(&g, 2.0, &center_fault(&g), 3, 5);
}

#[test]
fn star_contrast_family() {
    let g = generators::star(24);
    corrupt_family(&g, 1.0, 0xFA0C);
    check_family(&g, 1.0, &FaultSet::empty(), 3, 5);
    // Fault the hub: everything disconnects.
    let hub = FaultSet::from_vertices([NodeId::new(0)]);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    assert!(!oracle.connected(NodeId::new(1), NodeId::new(2), &hub));
}

#[test]
fn erdos_renyi_contrast_family() {
    // Not doubling-bounded; the scheme stays correct, only its size bound
    // is void.
    let g = generators::erdos_renyi(40, 0.12, 5);
    corrupt_family(&g, 1.0, 0xFA0D);
    check_family(&g, 1.0, &FaultSet::empty(), 3, 5);
    check_family(&g, 1.0, &center_fault(&g), 3, 5);
}
