//! Lazy-open contract tests: a store opened in [`OpenMode::Lazy`] must
//! answer every query bit-identically to the same store opened eagerly
//! (and to the in-memory oracle that wrote it), materialize only the
//! labels queries actually touch, and surface a corrupted *untouched*
//! label as a typed error at first touch — never a panic, and never a
//! wrong answer through the oracle (which recomputes from the graph).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::{store, ForbiddenSetOracle, OpenMode};
use fsdl_testkit::Rng;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("fsdl-lazy-open-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Probes every (s, t) pair on a stride with a deterministic mix of
/// vertex and edge faults, asserting the two oracles agree bit for bit.
fn assert_bit_identical(a: &ForbiddenSetOracle, b: &ForbiddenSetOracle, g: &Graph, seed: u64) {
    let n = g.num_vertices();
    let mut rng = Rng::seed_from_u64(seed);
    for s in (0..n).step_by(3) {
        for t in (0..n).step_by(5) {
            let mut f = FaultSet::empty();
            if rng.gen_bool(0.7) {
                f.forbid_vertex(NodeId::from_index(rng.gen_range(0..n)));
            }
            if rng.gen_bool(0.4) {
                let v = NodeId::from_index(rng.gen_range(0..n));
                if let Some(&w) = g.neighbors(v).first() {
                    let w = NodeId::new(w);
                    f.forbid_edge_unchecked(v.min(w), v.max(w));
                }
            }
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            assert_eq!(
                a.query(s, t, &f),
                b.query(s, t, &f),
                "{s}->{t} faults {f:?}"
            );
        }
    }
}

#[test]
fn lazy_and_eager_answers_are_bit_identical_per_family() {
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", generators::cycle(40)),
        ("grid", generators::grid2d(6, 6)),
        ("path", generators::path(30)),
    ];
    for (name, g) in families {
        let dir = scratch_dir(name);
        let built = ForbiddenSetOracle::new(&g, 1.0);
        built.save(&dir).expect("save");
        let eager = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Eager).expect("eager open");
        let lazy = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Lazy).expect("lazy open");
        assert_bit_identical(&eager, &lazy, &g, 0xFACE ^ name.len() as u64);
        assert_bit_identical(&built, &lazy, &g, 0xBEEF ^ name.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn lazy_and_eager_agree_on_random_graphs() {
    fsdl_testkit::check("lazy/eager bit identity", 8, |rng| {
        let n = rng.gen_range(12..40usize);
        let g = generators::random_tree(n, rng.next_u64());
        let dir = scratch_dir("rand");
        ForbiddenSetOracle::new(&g, 1.0).save(&dir).expect("save");
        let eager = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Eager).expect("eager open");
        let lazy = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Lazy).expect("lazy open");
        assert_bit_identical(&eager, &lazy, &g, rng.next_u64());
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Lazy opens materialize only the labels queries touch; the residency
/// counters prove it and the stats report the mode.
#[test]
fn lazy_open_materializes_only_touched_labels() {
    let g = generators::grid2d(7, 7);
    let dir = scratch_dir("residency");
    ForbiddenSetOracle::new(&g, 1.0).save(&dir).expect("save");
    let lazy = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Lazy).expect("lazy open");
    let at_open = lazy.label_plane_stats();
    assert_eq!(at_open.resident_labels, 0, "open must not decode labels");
    assert_eq!(at_open.resident_label_bytes, 0);
    assert!(at_open.on_disk_label_bytes > 0);
    assert_eq!(at_open.open_mode, Some(OpenMode::Lazy));

    let f = FaultSet::from_vertices([NodeId::new(24)]);
    lazy.query(NodeId::new(0), NodeId::new(48), &f);
    let after_query = lazy.label_plane_stats();
    assert_eq!(
        after_query.resident_labels, 3,
        "one query touches exactly s, t, and the fault"
    );
    assert!(after_query.resident_label_bytes > 0);

    lazy.prewarm();
    let warmed = lazy.label_plane_stats();
    assert_eq!(warmed.resident_labels, 49);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Finds the payload byte range of label `v` by parsing the segment
/// header/index directly (n at 24..32, index entries of 16 bytes from
/// 48, payload after the 4-byte index CRC).
fn label_extent(bytes: &[u8], v: usize) -> (usize, usize) {
    let n = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let at = 48 + v * 16;
    let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    let bit_len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
    let payload_start = 48 + n * 16 + 4;
    (payload_start + off, bit_len.div_ceil(8))
}

/// A corruption confined to one label's payload bytes survives a lazy
/// open (only the index checksum is verified there) and must then fail
/// *typed* at that label's first decode — while every other label, and
/// every oracle answer (via the recompute fallback), stays intact.
#[test]
fn corrupted_untouched_label_fails_typed_at_first_touch() {
    let g = generators::grid2d(6, 6);
    let dir = scratch_dir("first-touch");
    ForbiddenSetOracle::new(&g, 1.0).save(&dir).expect("save");
    let manifest = store::read_manifest(&dir).expect("manifest");
    let seg_path = dir.join(&manifest.segment);
    let mut bytes = std::fs::read(&seg_path).unwrap();

    let victim = 17usize;
    let (start, len) = label_extent(&bytes, victim);
    assert!(len > 0);
    for b in &mut bytes[start..start + len] {
        *b ^= 0xFF; // destroy the whole label, checksum trailer included
    }
    std::fs::write(&seg_path, &bytes).unwrap();

    // Eager open verifies the whole-file checksum and refuses up front.
    assert!(matches!(
        store::Segment::open(&seg_path, OpenMode::Eager),
        Err(fsdl_labels::StoreError::SegmentCorrupt { .. })
    ));

    // Lazy open succeeds — the corruption is beyond what it validates.
    let segment = store::Segment::open(&seg_path, OpenMode::Lazy).expect("lazy open");
    // First touch of the victim: a typed decode error, no panic.
    segment
        .decode_label(NodeId::from_index(victim))
        .expect_err("corrupted label must fail its first-touch validation");
    // Neighbors decode clean: corruption does not bleed across labels.
    for v in [0usize, 16, 18, 35] {
        segment
            .decode_label(NodeId::from_index(v))
            .unwrap_or_else(|e| panic!("pristine label {v} failed to decode: {e}"));
    }

    // Through the oracle the bad label is recomputed from the graph, so
    // answers stay bit-identical to a fresh build.
    let lazy = ForbiddenSetOracle::open_with(&dir, &g, OpenMode::Lazy).expect("oracle lazy open");
    let fresh = ForbiddenSetOracle::new(&g, 1.0);
    let f = FaultSet::from_vertices([NodeId::from_index(victim)]);
    for s in (0..36).step_by(4) {
        let (s, t) = (NodeId::from_index(s), NodeId::from_index((s * 5 + 3) % 36));
        assert_eq!(lazy.query(s, t, &f), fresh.query(s, t, &f));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dynamic oracle threads the open mode through to its serving
/// generation and reports it in the stats.
#[test]
fn dynamic_open_with_lazy_serves_identically() {
    let g = generators::cycle(30);
    let dir = scratch_dir("dynamic");
    let mut oracle = fsdl_labels::DynamicOracle::new(&g, 1.0);
    oracle.delete_vertex(NodeId::new(3)).unwrap();
    oracle.save(&dir).expect("save");

    let eager = fsdl_labels::DynamicOracle::open(&dir, &g).expect("eager open");
    let lazy = fsdl_labels::DynamicOracle::open_with(&dir, &g, OpenMode::Lazy).expect("lazy open");
    assert_eq!(lazy.stats().label_open_mode, Some(OpenMode::Lazy));
    assert_eq!(eager.stats().label_open_mode, Some(OpenMode::Eager));
    for s in 0..30u32 {
        let t = (s * 7 + 1) % 30;
        assert_eq!(
            eager.try_distance(NodeId::new(s), NodeId::new(t)),
            lazy.try_distance(NodeId::new(s), NodeId::new(t)),
            "{s}->{t}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
