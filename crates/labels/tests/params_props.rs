//! Property tests for the parameter schedule: the invariant chain of
//! DESIGN.md 2.4 must hold for every `(eps, c, n)` a caller can construct.

use fsdl_labels::SchemeParams;

#[test]
fn paper_schedules_always_valid() {
    fsdl_testkit::check("paper_schedules_always_valid", 256, |rng| {
        let eps = f64::from(rng.gen_range(50u32..10_000)) / 1000.0; // eps in [0.05, 10]
        let n = rng.gen_range(1usize..2_000_000);
        let p = SchemeParams::new(eps, n);
        assert_eq!(p.verify_invariants(), Ok(()));
        assert!(p.stretch_guaranteed());
        // The level range is never empty and starts above c.
        assert!(p.levels().count() >= 1);
        assert!(p.levels().next().unwrap() == p.c() + 1);
    });
}

#[test]
fn explicit_c_schedules_valid() {
    fsdl_testkit::check("explicit_c_schedules_valid", 256, |rng| {
        let eps = f64::from(rng.gen_range(50u32..10_000)) / 1000.0;
        let c = rng.gen_range(2u32..10);
        let n = rng.gen_range(1usize..100_000);
        let p = SchemeParams::with_c(eps, c, n);
        // The structural inequalities hold for any c >= 2 (only the stretch
        // guarantee needs the paper threshold).
        assert_eq!(p.verify_invariants(), Ok(()));
    });
}

#[test]
fn schedule_monotonicity() {
    fsdl_testkit::check("schedule_monotonicity", 256, |rng| {
        let eps = f64::from(rng.gen_range(100u32..5_000)) / 1000.0;
        let n = rng.gen_range(2usize..1_000_000);
        let p = SchemeParams::new(eps, n);
        for i in p.levels() {
            // rho < lambda < mu < r, and everything doubles per level.
            assert!(p.rho(i) < p.lambda(i));
            assert!(p.lambda(i) < p.mu(i));
            assert!(p.mu(i) < p.r(i));
            assert_eq!(p.rho(i + 1), 2 * p.rho(i));
            assert_eq!(p.lambda(i + 1), 2 * p.lambda(i));
            assert_eq!(p.mu(i + 1), 2 * p.mu(i));
        }
    });
}

#[test]
fn paper_c_matches_formula() {
    fsdl_testkit::check("paper_c_matches_formula", 256, |rng| {
        let eps = f64::from(rng.gen_range(10u32..100_000)) / 1000.0;
        let c = SchemeParams::paper_c(eps);
        let formula = (6.0 / eps).log2().ceil().max(2.0) as u32;
        assert_eq!(c, formula);
    });
}
