//! Property tests for the parameter schedule: the invariant chain of
//! DESIGN.md 2.4 must hold for every `(eps, c, n)` a caller can construct.

use fsdl_labels::SchemeParams;
use proptest::prelude::*;

proptest! {
    #[test]
    fn paper_schedules_always_valid(
        eps_milli in 50u32..10_000, // eps in [0.05, 10]
        n in 1usize..2_000_000,
    ) {
        let eps = f64::from(eps_milli) / 1000.0;
        let p = SchemeParams::new(eps, n);
        prop_assert_eq!(p.verify_invariants(), Ok(()));
        prop_assert!(p.stretch_guaranteed());
        // The level range is never empty and starts above c.
        prop_assert!(p.levels().count() >= 1);
        prop_assert!(p.levels().next().unwrap() == p.c() + 1);
    }

    #[test]
    fn explicit_c_schedules_valid(
        eps_milli in 50u32..10_000,
        c in 2u32..10,
        n in 1usize..100_000,
    ) {
        let eps = f64::from(eps_milli) / 1000.0;
        let p = SchemeParams::with_c(eps, c, n);
        // The structural inequalities hold for any c >= 2 (only the stretch
        // guarantee needs the paper threshold).
        prop_assert_eq!(p.verify_invariants(), Ok(()));
    }

    #[test]
    fn schedule_monotonicity(
        eps_milli in 100u32..5_000,
        n in 2usize..1_000_000,
    ) {
        let eps = f64::from(eps_milli) / 1000.0;
        let p = SchemeParams::new(eps, n);
        for i in p.levels() {
            // rho < lambda < mu < r, and everything doubles per level.
            prop_assert!(p.rho(i) < p.lambda(i));
            prop_assert!(p.lambda(i) < p.mu(i));
            prop_assert!(p.mu(i) < p.r(i));
            prop_assert_eq!(p.rho(i + 1), 2 * p.rho(i));
            prop_assert_eq!(p.lambda(i + 1), 2 * p.lambda(i));
            prop_assert_eq!(p.mu(i + 1), 2 * p.mu(i));
        }
    }

    #[test]
    fn paper_c_matches_formula(eps_milli in 10u32..100_000) {
        let eps = f64::from(eps_milli) / 1000.0;
        let c = SchemeParams::paper_c(eps);
        let formula = (6.0 / eps).log2().ceil().max(2.0) as u32;
        prop_assert_eq!(c, formula);
    }
}
