//! Property-based tests for the labeling scheme: codec round-trips on
//! arbitrary labels, and decoder soundness + stretch on arbitrary graphs
//! with arbitrary fault sets.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::codec::{decode, encode};
use fsdl_labels::failure_free::{query_failure_free, FailureFreeLabeling};
use fsdl_labels::{ForbiddenSetOracle, Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};
use fsdl_testkit::Rng;

/// An arbitrary structurally-valid label (edge indices in range, points
/// sorted by id) for codec round-trip testing.
fn random_label(rng: &mut Rng, n: u32) -> Label {
    let num_levels = rng.gen_range(1..5usize);
    let levels = (0..num_levels)
        .map(|_| {
            let mut points: Vec<LabelPoint> = (0..rng.gen_range(0..12usize))
                .map(|_| LabelPoint {
                    vertex: NodeId::new(rng.gen_range(0..n)),
                    dist: rng.gen_range(0..1000u32),
                    net_level: rng.gen_range(0..20u32),
                })
                .collect();
            points.sort_by_key(|p| p.vertex);
            points.dedup_by_key(|p| p.vertex);
            let k = points.len() as u32;
            let virtual_edges = if k >= 2 {
                (0..rng.gen_range(0..10usize))
                    .map(|_| VirtualEdge {
                        a: rng.gen_range(0..k),
                        b: rng.gen_range(0..k),
                        dist: rng.gen_range(0..1000u32),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let real_edges = if k >= 2 {
                (0..rng.gen_range(0..6usize))
                    .map(|_| RealEdge {
                        a: rng.gen_range(0..k),
                        b: rng.gen_range(0..k),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            LevelLabel {
                virtual_edges,
                real_edges,
                points,
            }
        })
        .collect();
    Label {
        owner: NodeId::new(rng.gen_range(0..n)),
        owner_net_level: rng.gen_range(0..20u32),
        first_level: rng.gen_range(2..6u32),
        levels,
    }
}

/// A random tree plus random extra edges: connected, arbitrary shape.
fn random_connectedish_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(2..24usize);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as u32, i as u32).expect("in range");
    }
    for _ in 0..rng.gen_range(0..20usize) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

#[test]
fn codec_roundtrip_arbitrary_labels() {
    fsdl_testkit::check("codec_roundtrip_arbitrary_labels", 64, |rng| {
        let label = random_label(rng, 500);
        let w = encode(&label, 500);
        let back = decode(w.as_bytes(), w.len_bits(), 500).expect("roundtrip");
        assert_eq!(back, label);
    });
}

#[test]
fn decoder_sound_and_within_stretch() {
    fsdl_testkit::check("decoder_sound_and_within_stretch", 24, |rng| {
        let g = random_connectedish_graph(rng);
        let n = g.num_vertices() as u32;
        let eps = 1.0;
        let oracle = ForbiddenSetOracle::new(&g, eps);
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let mut faults = FaultSet::empty();
        for _ in 0..rng.gen_range(0..4usize) {
            let f = NodeId::new(rng.gen_range(0..n));
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        let answer = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => assert!(answer.is_infinite(), "invented a path"),
            Some(0) => assert_eq!(answer.finite(), Some(0)),
            Some(td) => {
                let ad = answer.finite().expect("spurious disconnection");
                assert!(ad >= td, "unsound: {ad} < {td}");
                assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "stretch: {ad} vs {td}"
                );
            }
        }
    });
}

#[test]
fn decoder_edge_faults_sound() {
    fsdl_testkit::check("decoder_edge_faults_sound", 24, |rng| {
        let g = random_connectedish_graph(rng);
        let n = g.num_vertices() as u32;
        let edges: Vec<_> = g.edges().collect();
        if edges.is_empty() {
            return;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        let faults = FaultSet::from_edges(&g, [(e.lo(), e.hi())]);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let answer = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => assert!(answer.is_infinite()),
            Some(td) => {
                let ad = answer.finite().expect("spurious disconnection");
                assert!(ad >= td);
                assert!(f64::from(ad) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    });
}

#[test]
fn failure_free_scheme_within_stretch() {
    fsdl_testkit::check("failure_free_scheme_within_stretch", 24, |rng| {
        let g = random_connectedish_graph(rng);
        let eps = f64::from(rng.gen_range(1..5u32)) * 0.5;
        let n = g.num_vertices() as u32;
        let ff = FailureFreeLabeling::build(&g, eps);
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let answer = query_failure_free(&ff.label_of(s), &ff.label_of(t));
        let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
        match truth.finite() {
            None => assert!(answer.is_infinite()),
            Some(td) => {
                let ad = answer.finite().expect("connected pair");
                assert!(ad >= td);
                assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "ff stretch {ad} vs {td} at eps {eps}"
                );
            }
        }
    });
}

#[test]
fn decoded_labels_always_validate() {
    fsdl_testkit::check("decoded_labels_always_validate", 24, |rng| {
        let g = random_connectedish_graph(rng);
        let n = g.num_vertices();
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let v = NodeId::new(rng.gen_range(0..n as u32));
        let label = oracle.label(v);
        assert_eq!(label.validate(), Ok(()));
        let w = encode(&label, n);
        let back = decode(w.as_bytes(), w.len_bits(), n).expect("roundtrip");
        assert_eq!(back.validate(), Ok(()));
    });
}

#[test]
fn sketch_edges_are_safe() {
    fsdl_testkit::check("sketch_edges_are_safe", 24, |rng| {
        // Lemma 2.3 operationally: every admitted sketch edge (x, y) has
        // d_{G\F}(x, y) == its weight.
        let g = random_connectedish_graph(rng);
        let n = g.num_vertices() as u32;
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let mut faults = FaultSet::empty();
        for _ in 0..rng.gen_range(1..3usize) {
            let f = NodeId::new(rng.gen_range(0..n));
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        if faults.is_empty() {
            return;
        }
        let sl = oracle.label(s);
        let tl = oracle.label(t);
        let fls: Vec<_> = faults.vertices().map(|f| oracle.label(f)).collect();
        let ql = fsdl_labels::QueryLabels {
            fault_vertices: fls.iter().map(|l| l.as_ref()).collect(),
            fault_edges: vec![],
        };
        let sketch = fsdl_labels::build_sketch(oracle.params(), &sl, &tl, &ql);
        for (a, b, w) in sketch.graph.edges() {
            assert!(
                !faults.is_vertex_faulty(a) && !faults.is_vertex_faulty(b),
                "edge incident to a fault admitted: {a}-{b}"
            );
            let d = bfs::pair_distance_avoiding(&g, a, b, &faults);
            assert_eq!(
                d.finite(),
                Some(w as u32),
                "unsafe sketch edge {a}-{b} weight {w}"
            );
        }
    });
}
