//! Property-based tests for the labeling scheme: codec round-trips on
//! arbitrary labels, and decoder soundness + stretch on arbitrary graphs
//! with arbitrary fault sets.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::codec::{decode, encode};
use fsdl_labels::failure_free::{query_failure_free, FailureFreeLabeling};
use fsdl_labels::{ForbiddenSetOracle, Label, LabelPoint, LevelLabel, RealEdge, VirtualEdge};
use proptest::prelude::*;

/// Strategy: an arbitrary structurally-valid label (edge indices in range,
/// points sorted by id) for codec round-trip testing.
fn arb_label(n: u32) -> impl Strategy<Value = Label> {
    let point = (0..n, 0u32..1000, 0u32..20).prop_map(|(v, dist, net_level)| LabelPoint {
        vertex: NodeId::new(v),
        dist,
        net_level,
    });
    let level = proptest::collection::vec(point, 0..12).prop_flat_map(move |mut points| {
        points.sort_by_key(|p| p.vertex);
        points.dedup_by_key(|p| p.vertex);
        let k = points.len() as u32;
        let edges = if k >= 2 {
            proptest::collection::vec((0..k, 0..k, 0u32..1000), 0..10).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        let reals = if k >= 2 {
            proptest::collection::vec((0..k, 0..k), 0..6).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (Just(points), edges, reals).prop_map(|(points, edges, reals)| LevelLabel {
            virtual_edges: edges
                .into_iter()
                .map(|(a, b, dist)| VirtualEdge { a, b, dist })
                .collect(),
            real_edges: reals.into_iter().map(|(a, b)| RealEdge { a, b }).collect(),
            points,
        })
    });
    (
        0..n,
        0u32..20,
        2u32..6,
        proptest::collection::vec(level, 1..5),
    )
        .prop_map(|(owner, owner_net_level, first_level, levels)| Label {
            owner: NodeId::new(owner),
            owner_net_level,
            first_level,
            levels,
        })
}

fn arb_connectedish_graph() -> impl Strategy<Value = Graph> {
    // A random tree plus random extra edges: connected, arbitrary shape.
    (2usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n - 1),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..20),
        )
            .prop_map(move |(parents, extra)| {
                let mut b = GraphBuilder::new(n);
                for (i, p) in parents.iter().enumerate().skip(1) {
                    b.add_edge((p % i) as u32, i as u32).expect("in range");
                }
                for (a, c) in extra {
                    if a != c {
                        b.add_edge(a, c).expect("in range");
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_arbitrary_labels(label in arb_label(500)) {
        let w = encode(&label, 500);
        let back = decode(w.as_bytes(), w.len_bits(), 500).expect("roundtrip");
        prop_assert_eq!(back, label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decoder_sound_and_within_stretch(
        g in arb_connectedish_graph(),
        fault_picks in proptest::collection::vec(0u32..24, 0..4),
        s_pick in 0u32..24,
        t_pick in 0u32..24,
    ) {
        let n = g.num_vertices() as u32;
        let eps = 1.0;
        let oracle = ForbiddenSetOracle::new(&g, eps);
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let mut faults = FaultSet::empty();
        for f in fault_picks {
            let f = NodeId::new(f % n);
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        let answer = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => prop_assert!(answer.is_infinite(), "invented a path"),
            Some(0) => prop_assert_eq!(answer.finite(), Some(0)),
            Some(td) => {
                let ad = answer.finite().expect("spurious disconnection");
                prop_assert!(ad >= td, "unsound: {} < {}", ad, td);
                prop_assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "stretch: {} vs {}", ad, td
                );
            }
        }
    }

    #[test]
    fn decoder_edge_faults_sound(
        g in arb_connectedish_graph(),
        edge_pick in 0usize..50,
        s_pick in 0u32..24,
        t_pick in 0u32..24,
    ) {
        let n = g.num_vertices() as u32;
        let edges: Vec<_> = g.edges().collect();
        if edges.is_empty() {
            return Ok(());
        }
        let e = edges[edge_pick % edges.len()];
        let faults = FaultSet::from_edges(&g, [(e.lo(), e.hi())]);
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let answer = oracle.distance(s, t, &faults);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match truth.finite() {
            None => prop_assert!(answer.is_infinite()),
            Some(td) => {
                let ad = answer.finite().expect("spurious disconnection");
                prop_assert!(ad >= td);
                prop_assert!(f64::from(ad) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
    }

    #[test]
    fn failure_free_scheme_within_stretch(
        g in arb_connectedish_graph(),
        s_pick in 0u32..24,
        t_pick in 0u32..24,
        eps_scale in 1u32..5,
    ) {
        let eps = f64::from(eps_scale) * 0.5;
        let n = g.num_vertices() as u32;
        let ff = FailureFreeLabeling::build(&g, eps);
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let answer = query_failure_free(&ff.label_of(s), &ff.label_of(t));
        let truth = bfs::pair_distance_avoiding(&g, s, t, &FaultSet::empty());
        match truth.finite() {
            None => prop_assert!(answer.is_infinite()),
            Some(td) => {
                let ad = answer.finite().expect("connected pair");
                prop_assert!(ad >= td);
                prop_assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "ff stretch {} vs {} at eps {}", ad, td, eps
                );
            }
        }
    }

    #[test]
    fn decoded_labels_always_validate(
        g in arb_connectedish_graph(),
        v_pick in 0u32..24,
    ) {
        let n = g.num_vertices();
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let v = NodeId::new(v_pick % n as u32);
        let label = oracle.label(v);
        prop_assert_eq!(label.validate(), Ok(()));
        let w = encode(&label, n);
        let back = decode(w.as_bytes(), w.len_bits(), n).expect("roundtrip");
        prop_assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn sketch_edges_are_safe(
        g in arb_connectedish_graph(),
        fault_picks in proptest::collection::vec(0u32..24, 1..3),
    ) {
        // Lemma 2.3 operationally: every admitted sketch edge (x, y) has
        // d_{G\F}(x, y) == its weight.
        let n = g.num_vertices() as u32;
        let oracle = ForbiddenSetOracle::new(&g, 1.0);
        let s = NodeId::new(0);
        let t = NodeId::new(n - 1);
        let mut faults = FaultSet::empty();
        for f in fault_picks {
            let f = NodeId::new(f % n);
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        if faults.is_empty() {
            return Ok(());
        }
        let sl = oracle.label(s);
        let tl = oracle.label(t);
        let fls: Vec<_> = faults.vertices().map(|f| oracle.label(f)).collect();
        let ql = fsdl_labels::QueryLabels {
            fault_vertices: fls.iter().map(|l| l.as_ref()).collect(),
            fault_edges: vec![],
        };
        let sketch = fsdl_labels::build_sketch(oracle.params(), &sl, &tl, &ql);
        for (a, b, w) in sketch.graph.edges() {
            if faults.is_vertex_faulty(a) || faults.is_vertex_faulty(b) {
                // Edges incident to faults cannot be admitted.
                prop_assert!(false, "edge incident to a fault admitted: {a}-{b}");
            }
            let d = bfs::pair_distance_avoiding(&g, a, b, &faults);
            prop_assert_eq!(
                d.finite(), Some(w as u32),
                "unsafe sketch edge {}-{} weight {}", a, b, w
            );
        }
    }
}
