//! Scratch-reuse identity properties: a long-lived [`DecodeScratch`] must
//! be invisible in the answers. Every decode that reuses a scratch —
//! across interleaved `|F|` sizes, across different oracles, and across
//! chaos-mutated fault labels — must return exactly the answer a fresh
//! scratch returns. "Exactly" means the full [`QueryAnswer`]: distance,
//! witness path, and sketch sizes, bit for bit.

use fsdl_graph::{generators, Graph, NodeId};
use fsdl_labels::{
    codec, corrupt, query, query_many, query_many_with_scratch, query_with_scratch, trace_query,
    trace_query_with, DecodeScratch, ForbiddenSetOracle, Label, QueryLabels,
};
use fsdl_testkit::Rng;
use std::sync::Arc;

/// The interleaved forbidden-set sizes the tentpole cares about.
const FAULT_SIZES: [usize; 4] = [0, 1, 4, 16];

/// Draws `k` random fault-vertex labels (repeats allowed — the decoder
/// must dedupe providers the same way on both paths).
fn random_faults(
    oracle: &ForbiddenSetOracle,
    labels: &mut Vec<Arc<Label>>,
    n: usize,
    k: usize,
    rng: &mut Rng,
) {
    labels.clear();
    for _ in 0..k {
        let f = NodeId::from_index(rng.gen_range(0..n));
        labels.push(oracle.label(f));
    }
}

/// One long-lived scratch, three families, interleaved `|F| ∈ {0,1,4,16}`:
/// every reused-scratch answer equals the fresh-scratch answer.
#[test]
fn reused_scratch_matches_fresh_interleaved() {
    let cases: &[(Graph, f64)] = &[
        (generators::grid2d(6, 6), 1.0),
        (generators::cycle(40), 0.5),
        (generators::random_geometric(70, 0.2, 11), 1.0),
    ];
    let oracles: Vec<ForbiddenSetOracle> = cases
        .iter()
        .map(|(g, eps)| ForbiddenSetOracle::new(g, *eps))
        .collect();
    let mut scratch = DecodeScratch::new();
    let mut fault_labels = Vec::new();
    fsdl_testkit::check_seeded("reused_scratch_interleaved", 48, 0x5C4A_7C11, |rng| {
        let gi = rng.gen_range(0..oracles.len());
        let oracle = &oracles[gi];
        let n = cases[gi].0.num_vertices();
        let k = FAULT_SIZES[rng.gen_range(0..FAULT_SIZES.len())];
        random_faults(oracle, &mut fault_labels, n, k, rng);
        let faults = QueryLabels {
            fault_vertices: fault_labels.iter().map(|l| &**l).collect(),
            fault_edges: vec![],
        };
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let (ls, lt) = (oracle.label(s), oracle.label(t));
        let fresh = query(oracle.params(), &ls, &lt, &faults);
        let reused = query_with_scratch(oracle.params(), &ls, &lt, &faults, &mut scratch);
        assert_eq!(
            fresh, reused,
            "graph {gi} s={s} t={t} |F|={k}: reused scratch diverged"
        );
    });
    // Reuse actually happened: every case bumped the epoch at least once.
    assert!(scratch.epoch() >= 48, "scratch was not actually reused");
}

/// Chaos coverage: fault labels mutated by every `corrupt::Mutation`
/// class. Whenever the mutant decodes at all, the reused-scratch answer
/// must still be bit-identical to the fresh one — corrupted inputs must
/// not leave residue in the scratch either.
#[test]
fn reused_scratch_matches_fresh_on_mutated_labels() {
    let g = generators::grid2d(5, 5);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let mut scratch = DecodeScratch::new();
    let mut decoded = 0usize;
    fsdl_testkit::check_seeded("reused_scratch_mutated", 64, 0xC0_44A7, |rng| {
        let victim = NodeId::from_index(rng.gen_range(0..n));
        let donor = NodeId::from_index(rng.gen_range(0..n));
        let enc = codec::encode(&oracle.label(victim), n);
        let donor_enc = codec::encode(&oracle.label(donor), n);
        let mut schedule = corrupt::mutation_schedule(enc.len_bits(), 0, 24, rng.next_u64());
        // The whole-donor splice is the one mutant guaranteed to pass the
        // checksum (it *is* the donor label), so the decoded branch below
        // is always exercised.
        schedule.push(corrupt::Mutation::Splice {
            prefix_bits: 0,
            donor_skip: 0,
        });
        for m in schedule {
            let (bytes, bits) = m.apply(
                enc.as_bytes(),
                enc.len_bits(),
                Some((donor_enc.as_bytes(), donor_enc.len_bits())),
            );
            let Ok(mutant) = codec::decode(&bytes, bits, n) else {
                continue;
            };
            decoded += 1;
            let faults = QueryLabels {
                fault_vertices: vec![&mutant],
                fault_edges: vec![],
            };
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            let (ls, lt) = (oracle.label(s), oracle.label(t));
            let fresh = query(oracle.params(), &ls, &lt, &faults);
            let reused = query_with_scratch(oracle.params(), &ls, &lt, &faults, &mut scratch);
            assert_eq!(fresh, reused, "mutant fault label: reused scratch diverged");
        }
    });
    // The identity splice (and possibly others) must have decoded, or
    // this test silently checked nothing.
    assert!(decoded > 0, "no mutant ever decoded; schedule too weak");
}

/// Poisoned-scratch property: a scratch used against oracle A (different
/// graph, different parameters, different interned vertices) and then
/// handed to oracle B must behave exactly like a fresh scratch — nothing
/// from A's sketch, forbidden sets, or provider masks may leak into B's
/// answers, in either direction, at any interleaving.
#[test]
fn cross_oracle_scratch_never_leaks() {
    let ga = generators::grid2d(6, 6);
    let gb = generators::cycle(48);
    let a = ForbiddenSetOracle::new(&ga, 1.0);
    let b = ForbiddenSetOracle::new(&gb, 0.5);
    let mut scratch = DecodeScratch::new();
    let mut fault_labels = Vec::new();
    fsdl_testkit::check_seeded("cross_oracle_scratch", 40, 0xA_B0B, |rng| {
        let (oracle, n) = if rng.gen_bool(0.5) {
            (&a, ga.num_vertices())
        } else {
            (&b, gb.num_vertices())
        };
        let k = FAULT_SIZES[rng.gen_range(0..FAULT_SIZES.len())];
        random_faults(oracle, &mut fault_labels, n, k, rng);
        let faults = QueryLabels {
            fault_vertices: fault_labels.iter().map(|l| &**l).collect(),
            fault_edges: vec![],
        };
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let (ls, lt) = (oracle.label(s), oracle.label(t));
        let fresh = query(oracle.params(), &ls, &lt, &faults);
        let reused = query_with_scratch(oracle.params(), &ls, &lt, &faults, &mut scratch);
        assert_eq!(fresh, reused, "cross-oracle scratch leaked state");
    });
}

/// Batch path: `query_many_with_scratch` on a reused scratch, interleaved
/// with single-pair decodes on the *same* scratch, equals `query_many`
/// with no scratch at all — including duplicate targets and targets that
/// are themselves forbidden.
#[test]
fn batch_decode_interleaved_with_singles_matches() {
    let g = generators::grid2d(6, 6);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let mut scratch = DecodeScratch::new();
    fsdl_testkit::check_seeded("batch_scratch_interleaved", 24, 0xBA7C4, |rng| {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let ls = oracle.label(s);
        let fault = NodeId::from_index(rng.gen_range(0..n));
        let lf = oracle.label(fault);
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        // Targets with a deliberate duplicate and the fault itself.
        let mut targets: Vec<Arc<Label>> = (0..5)
            .map(|_| oracle.label(NodeId::from_index(rng.gen_range(0..n))))
            .collect();
        let dup = targets[0].clone();
        targets.push(dup);
        targets.push(lf.clone());
        let refs: Vec<&Label> = targets.iter().map(|l| &**l).collect();
        let fresh = query_many(oracle.params(), &ls, &refs, &faults);
        let reused = query_many_with_scratch(oracle.params(), &ls, &refs, &faults, &mut scratch);
        assert_eq!(fresh, reused, "batch answers diverged on reused scratch");
        // Now poison the same scratch with a single-pair decode and run
        // the batch again: still identical.
        let t = NodeId::from_index(rng.gen_range(0..n));
        let lt = oracle.label(t);
        let single_fresh = query(oracle.params(), &ls, &lt, &faults);
        let single_reused = query_with_scratch(oracle.params(), &ls, &lt, &faults, &mut scratch);
        assert_eq!(single_fresh, single_reused);
        let again = query_many_with_scratch(oracle.params(), &ls, &refs, &faults, &mut scratch);
        assert_eq!(fresh, again, "batch after single-pair decode diverged");
    });
}

/// Trace path: `trace_query_with` on a reused scratch reports the same
/// hops, provenance, and sketch sizes as a fresh `trace_query`.
#[test]
fn trace_on_reused_scratch_matches_fresh() {
    let g = generators::grid2d(5, 5);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let mut scratch = DecodeScratch::new();
    fsdl_testkit::check_seeded("trace_scratch_identity", 24, 0x77ACE, |rng| {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let fault = NodeId::from_index(rng.gen_range(0..n));
        let lf = oracle.label(fault);
        let faults = QueryLabels {
            fault_vertices: vec![&lf],
            fault_edges: vec![],
        };
        let (ls, lt) = (oracle.label(s), oracle.label(t));
        let fresh = trace_query(oracle.params(), &ls, &lt, &faults);
        let reused = trace_query_with(oracle.params(), &ls, &lt, &faults, &mut scratch);
        assert_eq!(fresh.distance, reused.distance);
        assert_eq!(fresh.hops, reused.hops);
        assert_eq!(fresh.sketch_size, reused.sketch_size);
    });
}
