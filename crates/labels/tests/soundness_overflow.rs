//! Regression tests for the decode-time distance clamp.
//!
//! Theorem 2.1 guarantees `δ(s, t, F) ≥ d_{G∖F}(s, t)` — the decoder may
//! only *over*estimate. A sketch path whose length exceeds `u32::MAX − 1`
//! cannot be represented by [`Dist`], so the decoder must widen it to
//! [`Dist::INFINITE`]; the old behaviour of clamping *down* to the largest
//! finite value returned an underestimate and silently broke soundness.
//!
//! A real graph forcing this would need billions of vertices, so the tests
//! hand-build labels under a huge-`n` schedule (`n = 2³³`, so level 31 with
//! `λ₃₁ = 2³² > u32::MAX` exists) in which `s` and `t` each store an owner
//! edge of weight ≈ `u32::MAX` to a shared waypoint `x`. The only sketch
//! path `s → x → t` then has length ≈ `2·u32::MAX`, which overflows `Dist`.

use fsdl_graph::{Dist, NodeId};
use fsdl_labels::{
    query, query_many, trace_query, Label, LabelPoint, LevelLabel, QueryLabels, SchemeParams,
};

/// The huge-`n` schedule: `ε = 1` gives `c = 3` (so `first_level = 4`), and
/// `n = 2³³` gives `top_level = 33`, making level 31 (`λ = 2³²`) available.
fn huge_params() -> SchemeParams {
    let p = SchemeParams::new(1.0, 1usize << 33);
    assert_eq!(p.c(), 3);
    assert_eq!(p.top_level(), 33);
    assert!(p.lambda(31) > u64::from(u32::MAX));
    p
}

/// A label for `owner` whose only content is a single level-31 point:
/// the shared waypoint `x` at exact distance `dist`.
fn spoke_label(owner: u32, x: u32, dist: u32) -> Label {
    let first_level = 4; // c + 1
    let spoke_level = 31;
    let mut levels = vec![LevelLabel::default(); (spoke_level - first_level + 1) as usize];
    levels[(spoke_level - first_level) as usize] = LevelLabel {
        points: vec![LabelPoint {
            vertex: NodeId::new(x),
            dist,
            net_level: spoke_level,
        }],
        virtual_edges: vec![],
        real_edges: vec![],
    };
    Label {
        owner: NodeId::new(owner),
        owner_net_level: 0,
        first_level,
        levels,
    }
}

/// Sketch path `s → x → t` of total length `d1 + d2`.
fn spoke_pair(d1: u32, d2: u32) -> (Label, Label) {
    (spoke_label(0, 2, d1), spoke_label(1, 2, d2))
}

#[test]
fn unrepresentable_distance_widens_to_infinite() {
    let p = huge_params();
    // Each spoke fits u32; the two-hop path is ~2·u32::MAX and does not.
    let (s, t) = spoke_pair(u32::MAX - 2, u32::MAX - 2);
    let answer = query(&p, &s, &t, &QueryLabels::none());
    // The sketch genuinely connects s and t...
    assert!(answer.sketch_edges >= 2);
    // ...but the only path overflows Dist, so the sound answer is INFINITE
    // (an overestimate), never a clamped-down finite underestimate. The
    // witnessing sketch path is still reported for diagnostics.
    assert_eq!(answer.distance, Dist::INFINITE);
    assert_eq!(
        answer.path,
        vec![NodeId::new(0), NodeId::new(2), NodeId::new(1)]
    );
}

#[test]
fn representable_boundary_distance_stays_exact() {
    let p = huge_params();
    // d1 + d2 = u32::MAX - 1: the largest representable finite distance.
    let (s, t) = spoke_pair(1 << 31, (u32::MAX - 1) - (1 << 31));
    let answer = query(&p, &s, &t, &QueryLabels::none());
    assert_eq!(answer.distance.finite(), Some(u32::MAX - 1));
    // One more unit of length (= u32::MAX, the INFINITE sentinel) must
    // widen rather than masquerade as the sentinel-valued finite distance.
    let (s, t) = spoke_pair(1 << 31, u32::MAX - (1 << 31));
    let answer = query(&p, &s, &t, &QueryLabels::none());
    assert_eq!(answer.distance, Dist::INFINITE);
}

#[test]
fn query_many_widens_unrepresentable_distances() {
    let p = huge_params();
    // 3e9 + 3e9 ≈ 6e9 > u32::MAX ≈ 4.29e9: s → t overflows...
    let (s, t) = spoke_pair(3_000_000_000, 3_000_000_000);
    // ...while s → near = 3e9 + 7 is still representable.
    let near = spoke_label(3, 2, 7);
    let answers = query_many(&p, &s, &[&t, &near], &QueryLabels::none());
    assert_eq!(answers.len(), 2);
    assert_eq!(answers[0], Dist::INFINITE);
    assert_eq!(answers[1].finite(), Some(3_000_000_007));
}

#[test]
fn trace_query_widens_unrepresentable_distances() {
    let p = huge_params();
    let (s, t) = spoke_pair(u32::MAX - 2, u32::MAX - 2);
    let trace = trace_query(&p, &s, &t, &QueryLabels::none());
    assert_eq!(trace.distance, Dist::INFINITE);
    // trace_query still reports the witnessing hops for diagnostics even
    // when the total length is unrepresentable.
    assert_eq!(trace.hops.len(), 2);
}

#[test]
fn dist_try_new_is_the_single_widening_point() {
    assert_eq!(Dist::try_new(0), Some(Dist::ZERO));
    assert_eq!(
        Dist::try_new(u64::from(u32::MAX) - 1).map(|d| d.finite()),
        Some(Some(u32::MAX - 1))
    );
    assert_eq!(Dist::try_new(u64::from(u32::MAX)), None);
    assert_eq!(Dist::try_new(u64::MAX), None);
}
