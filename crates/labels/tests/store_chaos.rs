//! Chaos tests for the on-disk label store: every corruption of segment
//! or manifest bytes — random bit flips, truncations, garbage
//! extensions, and hand-crafted adversarial patches — must surface as a
//! typed [`StoreError`], never a panic, and a store that *does* open
//! must answer queries exactly like the pristine one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fsdl_graph::{generators, NodeId};
use fsdl_labels::{corrupt, store, ForbiddenSetOracle, StoreError};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("fsdl-store-chaos-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Mirrors the store's whole-file checksum (FNV-1a 64 folded to 32
/// bits) so adversarial tests can patch bytes *and* fix the checksum,
/// proving that semantic validation — not just the CRC — rejects lies.
fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Rewrites both checksums — the index CRC after the index block and the
/// trailing whole-file CRC — to match the (possibly tampered) body, so
/// the mutation survives every CRC gate. The index CRC sits at
/// `48 + n·16` with `n` read from the (possibly tampered) header; when a
/// header lie pushes that position out of range the index CRC is left
/// alone (the open fails on the length check before reading it).
fn refresh_crc(bytes: &mut [u8]) {
    let n = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    if let Some(index_end) = 48usize.checked_add(n.saturating_mul(16)) {
        if index_end + 4 <= bytes.len() {
            let crc = fnv32(&bytes[..index_end]);
            bytes[index_end..index_end + 4].copy_from_slice(&crc.to_le_bytes());
        }
    }
    let body_len = bytes.len() - 4;
    let crc = fnv32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
}

fn build_store(tag: &str) -> (fsdl_graph::Graph, ForbiddenSetOracle, PathBuf) {
    let g = generators::grid2d(5, 5);
    let dir = scratch_dir(tag);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    oracle.save(&dir).expect("save");
    (g, oracle, dir)
}

/// The randomized sweep: hundreds of bit flips, truncations, and
/// garbage extensions of the segment file. Every case either fails with
/// a typed error or opens and answers the probe matrix exactly like the
/// pristine store — the sweep itself asserts that; here we additionally
/// require that the mutation schedule actually rejected a healthy
/// majority (a sweep where everything "opened fine" would mean the
/// mutations never landed).
#[test]
fn segment_corruption_sweep_never_panics_or_lies() {
    let (g, _oracle, dir) = build_store("sweep");
    let scratch = scratch_dir("sweep-scratch");
    let n = g.num_vertices();
    let probes: Vec<(NodeId, NodeId)> = (0..n)
        .step_by(3)
        .map(|s| (NodeId::from_index(s), NodeId::from_index((s * 7 + 1) % n)))
        .collect();
    let stats = corrupt::store_corruption_sweep(&dir, &scratch, &g, &probes, 240, 0x5eed);
    assert_eq!(stats.attempted, 240);
    assert_eq!(stats.attempted, stats.rejected + stats.opened_sound);
    assert!(
        stats.rejected > stats.attempted / 2,
        "only {}/{} mutations rejected — schedule too gentle",
        stats.rejected,
        stats.attempted
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The same sweep under a lazy open: the whole-file checksum gate is
/// gone, so payload corruptions survive to first touch — the per-label
/// checksum plus the oracle's recompute fallback must then keep every
/// probe answer bit-identical to the pristine store's. More opens
/// succeed than under eager (that is the point), but none may lie.
#[test]
fn lazy_segment_corruption_sweep_never_panics_or_lies() {
    let (g, _oracle, dir) = build_store("lazy-sweep");
    let scratch = scratch_dir("lazy-sweep-scratch");
    let n = g.num_vertices();
    let probes: Vec<(NodeId, NodeId)> = (0..n)
        .step_by(3)
        .map(|s| (NodeId::from_index(s), NodeId::from_index((s * 7 + 1) % n)))
        .collect();
    let stats = corrupt::store_corruption_sweep_with(
        &dir,
        &scratch,
        &g,
        &probes,
        240,
        0x5eed,
        fsdl_labels::OpenMode::Lazy,
    );
    assert_eq!(stats.attempted, 240);
    assert_eq!(stats.attempted, stats.rejected + stats.opened_sound);
    // Payload flips (the bulk of the schedule) open fine under lazy and
    // must have been served soundly via first-touch validation.
    assert!(
        stats.opened_sound > 0,
        "no mutation survived to a lazy open — the sweep never exercised \
         first-touch validation"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Manifest-level failure modes all map to distinct typed errors.
#[test]
fn manifest_failure_modes_are_typed() {
    let (g, _oracle, dir) = build_store("manifest");
    let manifest_path = dir.join(store::MANIFEST_NAME);
    let pristine = std::fs::read(&manifest_path).unwrap();

    // Missing manifest: a directory that is not a store.
    std::fs::remove_file(&manifest_path).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::ManifestMissing { .. })
    ));

    // Garbage manifest.
    std::fs::write(&manifest_path, b"not a manifest at all\n").unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::ManifestCorrupt { .. })
    ));

    // Truncated manifest (checksum line gone).
    let cut = pristine.len() / 2;
    std::fs::write(&manifest_path, &pristine[..cut]).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::ManifestCorrupt { .. })
    ));

    // Manifest naming a generation whose segment is gone.
    std::fs::write(&manifest_path, &pristine).unwrap();
    let manifest = store::read_manifest(&dir).unwrap();
    std::fs::remove_file(dir.join(&manifest.segment)).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::SegmentMissing { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A future format version is refused up front — with the checksum
/// fixed so the version gate itself, not the CRC, does the refusing.
#[test]
fn version_skew_is_refused() {
    let (g, _oracle, dir) = build_store("version");
    let seg_path = dir.join(&store::read_manifest(&dir).unwrap().segment);
    let mut bytes = std::fs::read(&seg_path).unwrap();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes()); // version field
    refresh_crc(&mut bytes);
    std::fs::write(&seg_path, &bytes).unwrap();
    let err = ForbiddenSetOracle::open(&dir, &g).expect_err("future version must not open");
    assert_eq!(err, StoreError::VersionUnsupported { found: 7 });
    let _ = std::fs::remove_dir_all(&dir);
}

/// An index entry claiming a label extends past the payload is caught
/// at open time (with a valid CRC), so lazy per-query decodes can never
/// read out of bounds — the store-level face of the short-read fix.
#[test]
fn index_extent_lies_are_rejected_at_open() {
    let (g, _oracle, dir) = build_store("extent");
    let seg_path = dir.join(&store::read_manifest(&dir).unwrap().segment);
    let pristine = std::fs::read(&seg_path).unwrap();

    // Entry 0's bit length, at header + 8 bytes (after its offset word).
    let mut bytes = pristine.clone();
    bytes[56..64].copy_from_slice(&u64::MAX.to_le_bytes());
    refresh_crc(&mut bytes);
    std::fs::write(&seg_path, &bytes).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::SegmentCorrupt { .. })
    ));

    // Entry 0's byte offset pushed past the payload.
    let mut bytes = pristine.clone();
    bytes[48..56].copy_from_slice(&(1u64 << 40).to_le_bytes());
    refresh_crc(&mut bytes);
    std::fs::write(&seg_path, &bytes).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::SegmentCorrupt { .. })
    ));

    // Header lying about n (label count) no longer matches the file
    // length — also caught before any decode.
    let mut bytes = pristine;
    bytes[24..32].copy_from_slice(&10_000u64.to_le_bytes());
    refresh_crc(&mut bytes);
    std::fs::write(&seg_path, &bytes).unwrap();
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &g),
        Err(StoreError::SegmentCorrupt { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation at every structurally interesting boundary — inside the
/// magic, the header, the index, the payload, and the checksum — is a
/// typed error, never a panic or an out-of-bounds read.
#[test]
fn truncation_at_every_boundary_is_typed() {
    let (g, _oracle, dir) = build_store("truncate");
    let seg_path = dir.join(&store::read_manifest(&dir).unwrap().segment);
    let pristine = std::fs::read(&seg_path).unwrap();
    let cuts = [
        0,
        4,                  // inside the magic
        12,                 // inside the header
        47,                 // one short of a full header
        48 + 8,             // inside the first index entry
        48 + 25 * 16 + 2,   // inside the index checksum (n = 25)
        pristine.len() / 2, // inside the payload
        pristine.len() - 1, // inside the checksum
    ];
    for &cut in &cuts {
        std::fs::write(&seg_path, &pristine[..cut]).unwrap();
        let err = ForbiddenSetOracle::open(&dir, &g).expect_err("truncated segment must not open");
        assert!(
            matches!(err, StoreError::SegmentCorrupt { .. }),
            "cut at {cut}: unexpected error {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutation schedules are deterministic in their seed (so chaos
/// failures reproduce) and cover all three mutation kinds.
#[test]
fn mutation_schedule_is_deterministic_and_diverse() {
    let a = corrupt::store_mutation_schedule(1000, 30, 7);
    let b = corrupt::store_mutation_schedule(1000, 30, 7);
    assert_eq!(a, b);
    let c = corrupt::store_mutation_schedule(1000, 30, 8);
    assert_ne!(a, c);
    let mut kinds = [false; 3];
    for m in &a {
        match m {
            corrupt::StoreMutation::FlipByteBit { .. } => kinds[0] = true,
            corrupt::StoreMutation::Truncate { .. } => kinds[1] = true,
            corrupt::StoreMutation::Extend { .. } => kinds[2] = true,
        }
    }
    assert_eq!(kinds, [true; 3]);
}
