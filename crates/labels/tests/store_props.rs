//! Persistence properties of the label store: save → open round trips
//! are bit-identical, the atomic write protocol survives a crash between
//! segment write and manifest swap, and the dynamic oracle resumes
//! mid-churn from disk with exactly the answers it would have given in
//! memory.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fsdl_graph::{bfs, generators, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::{store, DynamicError, DynamicOracle, ForbiddenSetOracle, StoreError};
use fsdl_testkit::Rng;

/// A fresh scratch directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("fsdl-store-props-{tag}-{}-{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random connected graph on `3..max_n` vertices: a random spanning
/// tree plus a handful of extra edges.
fn random_connected_graph(rng: &mut Rng, max_n: usize) -> Graph {
    let n = rng.gen_range(3..max_n);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as u32, i as u32).expect("in range");
    }
    let extra = rng.gen_range(0..14usize);
    for _ in 0..extra {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

/// Asserts that `cold` (in-memory build) and `warm` (opened from disk)
/// answer a probe matrix bit-identically: labels decode to the same
/// bytes, so every query answer — distance, witness path, sketch size —
/// must match exactly.
fn assert_bit_identical(cold: &ForbiddenSetOracle, warm: &ForbiddenSetOracle, g: &Graph) {
    let n = g.num_vertices();
    for v in 0..n {
        let v = NodeId::from_index(v);
        assert_eq!(*cold.label(v), *warm.label(v), "label of {v} differs");
    }
    let s_step = (n / 7).max(1);
    let t_step = (n / 5).max(1);
    for s in (0..n).step_by(s_step) {
        for t in (0..n).step_by(t_step) {
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            let fault = NodeId::from_index((s.index() + t.index() + 1) % n);
            let faults = FaultSet::from_vertices([fault]);
            assert_eq!(
                cold.query(s, t, &faults),
                warm.query(s, t, &faults),
                "{s}->{t} avoiding {fault} diverged"
            );
        }
    }
}

/// Save → open is bit-identical on all three experiment graph families
/// (the `fsdl build --store` acceptance criterion), and a second save
/// publishes a new generation while pruning the old one.
#[test]
fn save_open_roundtrip_across_families() {
    let families: [(&str, Graph); 3] = [
        ("path", generators::path(64)),
        ("grid2d", generators::grid2d(8, 8)),
        ("udg", generators::random_geometric(60, 0.25, 1)),
    ];
    for (family, g) in &families {
        let dir = scratch_dir(&format!("family-{family}"));
        let cold = ForbiddenSetOracle::new(g, 1.0);
        let report = cold.save(&dir).expect("save succeeds");
        assert_eq!(report.generation, 1, "{family}");
        assert_eq!(report.labels, g.num_vertices(), "{family}");
        assert!(report.segment_bytes > 0, "{family}");

        let warm = ForbiddenSetOracle::open(&dir, g).expect("open succeeds");
        assert_eq!(warm.params(), cold.params(), "{family}: params differ");
        assert_bit_identical(&cold, &warm, g);

        // A second save publishes generation 2 and prunes generation 1.
        let report2 = cold.save(&dir).expect("second save succeeds");
        assert_eq!(report2.generation, 2, "{family}");
        assert!(
            !dir.join(store::segment_file_name(1)).exists(),
            "{family}: old generation not pruned"
        );
        assert!(dir.join(store::segment_file_name(2)).exists(), "{family}");
        let warm2 = ForbiddenSetOracle::open(&dir, g).expect("reopen succeeds");
        assert_bit_identical(&cold, &warm2, g);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The crash-consistency guarantee: a crash (here, simply stopping)
/// after the new segment is durably written but *before* the manifest
/// swap leaves the previous generation current and openable — the new
/// segment is invisible until its manifest commits.
#[test]
fn crash_between_segment_write_and_manifest_swap_keeps_previous_generation() {
    let g = generators::grid2d(6, 6);
    let dir = scratch_dir("crash");
    let cold = ForbiddenSetOracle::new(&g, 1.0);
    cold.save(&dir).expect("initial save");

    // Simulate the crashed writer: generation 2's segment lands fully on
    // disk (as `write_generation` would put it there), but the process
    // dies before `write_manifest` — the commit point — runs.
    let encoded: Vec<(Vec<u8>, usize)> = (0..g.num_vertices())
        .map(|v| {
            let label = cold.label(NodeId::from_index(v));
            let w = fsdl_labels::codec::try_encode(&label, g.num_vertices()).unwrap();
            (w.as_bytes().to_vec(), w.len_bits())
        })
        .collect();
    store::write_segment(
        &dir,
        2,
        cold.params(),
        store::graph_fingerprint(&g),
        &encoded,
    )
    .expect("segment write");

    // The store still opens — on generation 1.
    let manifest = store::read_manifest(&dir).expect("manifest intact");
    assert_eq!(manifest.generation, 1);
    let warm = ForbiddenSetOracle::open(&dir, &g).expect("previous generation opens");
    assert_bit_identical(&cold, &warm, &g);

    // And the next successful save allocates a fresh generation number
    // past the orphaned segment, then prunes it.
    let report = cold.save(&dir).expect("post-crash save");
    assert_eq!(report.generation, 2);
    assert!(ForbiddenSetOracle::open(&dir, &g).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn temp file (crash mid-`write_all`, before the atomic rename)
/// is invisible to readers and cleaned up by the next save.
#[test]
fn torn_temp_file_is_ignored() {
    let g = generators::path(16);
    let dir = scratch_dir("torn");
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    oracle.save(&dir).expect("save");
    std::fs::write(dir.join(".tmp-seg-2.fsl"), b"half-written garbag").unwrap();
    let warm = ForbiddenSetOracle::open(&dir, &g).expect("open ignores temp files");
    assert_bit_identical(&oracle, &warm, &g);
    oracle.save(&dir).expect("second save");
    assert!(
        !dir.join(".tmp-seg-2.fsl").exists(),
        "stale temp file not pruned"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Opening a store against a different graph than it was built for is a
/// typed mismatch, not a wrong answer.
#[test]
fn open_against_wrong_graph_is_a_typed_mismatch() {
    let g = generators::grid2d(5, 5);
    let dir = scratch_dir("mismatch");
    ForbiddenSetOracle::new(&g, 1.0).save(&dir).expect("save");
    let other = generators::cycle(25); // same n, different edges
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &other),
        Err(StoreError::GraphMismatch { .. })
    ));
    let smaller = generators::grid2d(4, 4);
    assert!(matches!(
        ForbiddenSetOracle::open(&dir, &smaller),
        Err(StoreError::GraphMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property: on random connected graphs, a saved-and-reopened oracle is
/// indistinguishable from the in-memory one, query by query.
#[test]
fn random_graph_roundtrips_bit_identically() {
    fsdl_testkit::check("random_graph_roundtrips_bit_identically", 8, |rng| {
        let g = random_connected_graph(rng, 20);
        let dir = scratch_dir("prop");
        let cold = ForbiddenSetOracle::new(&g, 1.0);
        cold.save(&dir).expect("save");
        let warm = ForbiddenSetOracle::open(&dir, &g).expect("open");
        assert_bit_identical(&cold, &warm, &g);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Satellite: long random churn on the dynamic oracle — interleaved
/// vertex/edge deletions and restorations across several rebuild
/// generations — with every answer checked against
/// `bfs::pair_distance_avoiding` truth, and a mid-churn save → open
/// asserted to resume bit-identically (baked *and* buffered state).
#[test]
fn dynamic_churn_with_mid_churn_persistence() {
    fsdl_testkit::check("dynamic_churn_with_mid_churn_persistence", 6, |rng| {
        let g = random_connected_graph(rng, 16);
        let n = g.num_vertices() as u32;
        let threshold = rng.gen_range(1usize..4);
        let mut oracle = DynamicOracle::with_threshold(&g, 1.0, threshold);
        let mut live_faults = FaultSet::empty();
        let dir = scratch_dir("churn");
        let steps = rng.gen_range(24..48usize);
        for step in 0..steps {
            let op = rng.gen_range(0u32..5);
            let a = NodeId::new(rng.gen_range(0..n));
            let b = NodeId::new(rng.gen_range(0..n));
            match op {
                0 => {
                    oracle.delete_vertex(a).expect("in range");
                    live_faults.forbid_vertex(a);
                }
                1 => match oracle.restore_vertex(a) {
                    Ok(()) => {
                        live_faults.permit_vertex(a);
                    }
                    Err(e) => assert_eq!(e, DynamicError::VertexNotDeleted { v: a }),
                },
                2 => {
                    if a != b && g.has_edge(a, b) {
                        oracle.delete_edge(a, b).expect("edge exists");
                        live_faults.forbid_edge_unchecked(a, b);
                    }
                }
                3 if a != b => match oracle.restore_edge(a, b) {
                    Ok(()) => {
                        live_faults.permit_edge(a, b);
                    }
                    Err(e) => assert!(matches!(
                        e,
                        DynamicError::EdgeNotDeleted { .. } | DynamicError::NotAnEdge { .. }
                    )),
                },
                _ => {
                    let got = oracle.try_distance(a, b).expect("in range");
                    let truth = bfs::pair_distance_avoiding(&g, a, b, &live_faults);
                    match truth.finite() {
                        None => assert!(got.is_infinite(), "invented path {a}->{b}"),
                        Some(td) => {
                            let gd = got.finite().expect("missed path");
                            assert!(gd >= td);
                            assert!(f64::from(gd) <= 2.0 * f64::from(td) + 1e-9);
                        }
                    }
                }
            }
            // Twice per run: checkpoint mid-churn and prove the reopened
            // oracle answers every pair exactly like the live one.
            if step == steps / 3 || step == (2 * steps) / 3 {
                oracle.save(&dir).expect("mid-churn save");
                let reopened = DynamicOracle::open(&dir, &g).expect("mid-churn open");
                assert_eq!(reopened.buffered(), oracle.buffered());
                for s in 0..n {
                    for t in 0..n {
                        let (s, t) = (NodeId::new(s), NodeId::new(t));
                        assert_eq!(
                            oracle.try_distance(s, t),
                            reopened.try_distance(s, t),
                            "mid-churn resume diverged at {s}->{t}"
                        );
                    }
                }
            }
        }
        // Several generations should have been exercised on longer runs;
        // at minimum the oracle must still match truth at the end.
        let truth_check =
            bfs::pair_distance_avoiding(&g, NodeId::new(0), NodeId::new(n - 1), &live_faults);
        let got = oracle
            .try_distance(NodeId::new(0), NodeId::new(n - 1))
            .unwrap();
        match truth_check.finite() {
            None => assert!(got.is_infinite()),
            Some(td) => {
                let gd = got.finite().expect("missed path");
                assert!(gd >= td);
                assert!(f64::from(gd) <= 2.0 * f64::from(td) + 1e-9);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Attached stores persist rebuilds LSM-style: each rebuild publishes a
/// new generation, older generations are pruned, and reopening resumes
/// the exact answers.
#[test]
fn attached_store_persists_each_rebuild_as_a_generation() {
    let g = generators::cycle(24);
    let dir = scratch_dir("lsm");
    let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
    let report = oracle.attach_store(&dir).expect("attach saves");
    assert_eq!(report.generation, 1);
    assert_eq!(oracle.store_dir().as_deref(), Some(dir.as_path()));

    // Two deletions exceed the threshold: rebuild + persisted generation.
    oracle.delete_vertex(NodeId::new(1)).expect("delete");
    oracle
        .delete_vertex(NodeId::new(2))
        .expect("delete + rebuild");
    assert_eq!(oracle.rebuilds(), 1);
    let manifest = store::read_manifest(&dir).expect("manifest");
    assert_eq!(manifest.generation, 2);
    assert!(manifest.baked.is_vertex_faulty(NodeId::new(1)));
    assert!(
        !dir.join(store::segment_file_name(1)).exists(),
        "generation 1 not pruned"
    );

    // A baked restoration rebuilds and persists again.
    oracle.restore_vertex(NodeId::new(1)).expect("restore");
    assert_eq!(store::read_manifest(&dir).expect("manifest").generation, 3);

    let reopened = DynamicOracle::open(&dir, &g).expect("open");
    for s in 0..24u32 {
        for t in 0..24u32 {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            assert_eq!(
                oracle.try_distance(s, t),
                reopened.try_distance(s, t),
                "{s}->{t}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `try_distance` surfaces out-of-range queries as typed errors while
/// `distance` (routed through it) keeps its documented panic, and the
/// degenerate all-deleted state still saves and reopens.
#[test]
fn try_distance_and_degenerate_states_roundtrip() {
    let g = generators::path(4);
    let mut oracle = DynamicOracle::with_threshold(&g, 1.0, 1);
    assert_eq!(
        oracle.try_distance(NodeId::new(0), NodeId::new(9)),
        Err(DynamicError::VertexOutOfRange {
            v: NodeId::new(9),
            n: 4
        })
    );
    assert_eq!(
        oracle.try_distance(NodeId::new(7), NodeId::new(0)),
        Err(DynamicError::VertexOutOfRange {
            v: NodeId::new(7),
            n: 4
        })
    );

    // Delete everything: the placeholder labeling must save and reopen.
    for v in 0..4u32 {
        oracle.delete_vertex(NodeId::new(v)).expect("delete");
    }
    let dir = scratch_dir("degenerate");
    oracle.save(&dir).expect("save degenerate state");
    let reopened = DynamicOracle::open(&dir, &g).expect("open degenerate state");
    for s in 0..4u32 {
        for t in 0..4u32 {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            assert_eq!(oracle.try_distance(s, t), reopened.try_distance(s, t));
            assert!(reopened.try_distance(s, t).unwrap().is_infinite() || s == t);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
