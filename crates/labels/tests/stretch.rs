//! End-to-end stretch validation of the forbidden-set labeling scheme:
//! for every query `(s, t, F)`, the decoder's answer must satisfy
//! `d_{G∖F}(s,t) <= answer <= (1+eps) * d_{G∖F}(s,t)` (Theorem 2.1), and
//! disconnections must be reported exactly (safety implies no
//! under-reporting; existence implies no spurious disconnections).

use fsdl_graph::{bfs, generators, FaultSet, Graph, NodeId};
use fsdl_labels::ForbiddenSetOracle;
use fsdl_testkit::Rng;

/// Checks one query against ground truth; returns the realized stretch (1.0
/// for exact / trivial answers).
fn check_query(
    g: &Graph,
    oracle: &ForbiddenSetOracle,
    s: NodeId,
    t: NodeId,
    f: &FaultSet,
    eps: f64,
) -> f64 {
    let answer = oracle.distance(s, t, f);
    let truth = bfs::pair_distance_avoiding(g, s, t, f);
    match truth.finite() {
        None => {
            assert!(
                answer.is_infinite(),
                "decoder reported distance {answer} for disconnected pair {s}->{t} (F size {})",
                f.len()
            );
            1.0
        }
        Some(0) => {
            assert_eq!(answer.finite(), Some(0), "self distance must be 0");
            1.0
        }
        Some(td) => {
            let ad = answer
                .finite()
                .unwrap_or_else(|| panic!("spurious disconnection {s}->{t} (truth {td})"));
            assert!(ad >= td, "{s}->{t}: answer {ad} below truth {td}");
            let stretch = f64::from(ad) / f64::from(td);
            assert!(
                stretch <= 1.0 + eps + 1e-9,
                "{s}->{t}: stretch {stretch:.4} exceeds 1+{eps} (answer {ad}, truth {td}, |F|={})",
                f.len()
            );
            stretch
        }
    }
}

/// Runs randomized queries with random fault sets on `g`.
fn fuzz_graph(g: &Graph, eps: f64, max_faults: usize, rounds: usize, seed: u64) {
    let n = g.num_vertices();
    let oracle = ForbiddenSetOracle::new(g, eps);
    let mut rng = Rng::seed_from_u64(seed);
    for round in 0..rounds {
        let nf = rng.gen_range(0..=max_faults);
        let mut f = FaultSet::empty();
        while f.len() < nf {
            if rng.gen_bool(0.7) {
                f.forbid_vertex(NodeId::from_index(rng.gen_range(0..n)));
            } else {
                // Random edge fault.
                let v = NodeId::from_index(rng.gen_range(0..n));
                let nbrs = g.neighbors(v);
                if !nbrs.is_empty() {
                    let w = NodeId::new(nbrs[rng.gen_range(0..nbrs.len())]);
                    f.forbid_edge_unchecked(v, w);
                }
            }
        }
        let s = loop {
            let s = NodeId::from_index(rng.gen_range(0..n));
            if !f.is_vertex_faulty(s) {
                break s;
            }
        };
        let t = loop {
            let t = NodeId::from_index(rng.gen_range(0..n));
            if !f.is_vertex_faulty(t) {
                break t;
            }
        };
        let _ = check_query(g, &oracle, s, t, &f, eps);
        let _ = round;
    }
}

#[test]
fn path_exhaustive_single_vertex_fault() {
    let g = generators::path(24);
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    for fv in 0..24u32 {
        let f = FaultSet::from_vertices([NodeId::new(fv)]);
        for s in 0..24u32 {
            for t in 0..24u32 {
                if s == fv || t == fv {
                    continue;
                }
                check_query(&g, &oracle, NodeId::new(s), NodeId::new(t), &f, eps);
            }
        }
    }
}

#[test]
fn cycle_exhaustive_single_fault() {
    let g = generators::cycle(20);
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    for fv in 0..20u32 {
        let f = FaultSet::from_vertices([NodeId::new(fv)]);
        for s in 0..20u32 {
            for t in 0..20u32 {
                if s == fv || t == fv {
                    continue;
                }
                check_query(&g, &oracle, NodeId::new(s), NodeId::new(t), &f, eps);
            }
        }
    }
}

#[test]
fn grid_random_faults_eps_1() {
    fuzz_graph(&generators::grid2d(8, 8), 1.0, 6, 60, 0xA11CE);
}

#[test]
fn grid_random_faults_eps_half() {
    fuzz_graph(&generators::grid2d(7, 7), 0.5, 4, 40, 0xB0B);
}

#[test]
fn grid_random_faults_eps_3() {
    fuzz_graph(&generators::grid2d(9, 9), 3.0, 8, 60, 0xC0FFEE);
}

#[test]
fn king_grid_random_faults() {
    fuzz_graph(&generators::king_grid(7, 7), 1.0, 5, 40, 7);
}

#[test]
fn tree_random_faults() {
    fuzz_graph(&generators::balanced_tree(3, 4), 1.0, 6, 60, 42);
}

#[test]
fn caterpillar_random_faults() {
    fuzz_graph(&generators::caterpillar(20, 2), 1.0, 6, 60, 99);
}

#[test]
fn geometric_random_faults() {
    let g = generators::random_geometric(100, 0.17, 11);
    fuzz_graph(&g, 1.0, 5, 40, 0xD00D);
}

#[test]
fn cycle_edge_faults_exhaustive() {
    let g = generators::cycle(16);
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    for e in 0..16u32 {
        let f = FaultSet::from_edges(&g, [(NodeId::new(e), NodeId::new((e + 1) % 16))]);
        for s in 0..16u32 {
            for t in 0..16u32 {
                check_query(&g, &oracle, NodeId::new(s), NodeId::new(t), &f, eps);
            }
        }
    }
}

#[test]
fn grid_cut_line_fault_cluster() {
    // An adversarial fault set: a vertical wall with one gap forces long
    // detours.
    let w = 9;
    let g = generators::grid2d(w, 9);
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    let mut f = FaultSet::empty();
    for y in 0..8u32 {
        f.forbid_vertex(NodeId::new(y * w as u32 + 4));
    }
    for s in [0u32, 36, 72] {
        for t in [8u32, 44, 80] {
            check_query(&g, &oracle, NodeId::new(s), NodeId::new(t), &f, eps);
        }
    }
}

#[test]
fn disconnecting_fault_wall() {
    let w = 7;
    let g = generators::grid2d(w, 7);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let mut f = FaultSet::empty();
    for y in 0..7u32 {
        f.forbid_vertex(NodeId::new(y * w as u32 + 3));
    }
    // Left and right halves are fully disconnected.
    assert!(!oracle.connected(NodeId::new(0), NodeId::new(6), &f));
    assert!(oracle.connected(NodeId::new(0), NodeId::new(2), &f));
}

#[test]
fn adversarial_articulation_faults() {
    // Fault the neighborhoods of articulation points: worst-case detours
    // and disconnections.
    for g in [
        fsdl_graph::generators::barbell(5, 3),
        fsdl_graph::generators::lollipop(5, 6),
        fsdl_graph::generators::caterpillar(12, 2),
        fsdl_graph::generators::spider(4, 6),
    ] {
        let eps = 1.0;
        let oracle = ForbiddenSetOracle::new(&g, eps);
        let cs = fsdl_graph::cut::cut_structure(&g);
        for &ap in cs.articulation_points.iter().take(6) {
            // Fault the articulation point itself.
            let f = FaultSet::from_vertices([ap]);
            for s in (0..g.num_vertices() as u32).step_by(3) {
                for t in (0..g.num_vertices() as u32).step_by(4) {
                    let (s, t) = (NodeId::new(s), NodeId::new(t));
                    if s == ap || t == ap {
                        continue;
                    }
                    check_query(&g, &oracle, s, t, &f, eps);
                }
            }
            // Fault its neighborhood (without the endpoints).
            let ring: FaultSet = g.neighbor_ids(ap).collect();
            for s in (0..g.num_vertices() as u32).step_by(5) {
                let (s, t) = (NodeId::new(s), ap);
                if ring.is_vertex_faulty(s) || ring.is_vertex_faulty(t) {
                    continue;
                }
                check_query(&g, &oracle, s, t, &ring, eps);
            }
        }
        // Fault every bridge.
        for e in cs.bridges.iter().take(8) {
            let f = FaultSet::from_edges(&g, [(e.lo(), e.hi())]);
            check_query(&g, &oracle, e.lo(), e.hi(), &f, eps);
            check_query(
                &g,
                &oracle,
                NodeId::new(0),
                NodeId::new(g.num_vertices() as u32 - 1),
                &f,
                eps,
            );
        }
    }
}

#[test]
fn mixed_vertex_and_edge_faults() {
    let g = generators::grid2d(7, 7);
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    let mut f = FaultSet::from_vertices([NodeId::new(24)]);
    f.forbid_edge_unchecked(NodeId::new(10), NodeId::new(11));
    f.forbid_edge_unchecked(NodeId::new(30), NodeId::new(37));
    for s in 0..49u32 {
        if f.is_vertex_faulty(NodeId::new(s)) {
            continue;
        }
        check_query(&g, &oracle, NodeId::new(s), NodeId::new(48 - s), &f, eps);
    }
}
