//! Durability gate for the dynamic oracle: the deterministic crash-point
//! matrix (every injectable point of the WAL/store commit protocol) plus
//! the WAL chaos sweep, asserting that recovery is always either
//! bit-identical to an oracle that never crashed or a typed error —
//! zero panics, zero silent divergence.
//!
//! Crash injection is process-global one-shot state, so every test that
//! touches a store serializes on [`harness_lock`]; the matrix itself
//! iterates the points sequentially inside one test.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use fsdl_graph::{generators, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_labels::corrupt::wal_corruption_sweep;
use fsdl_labels::crash::{self, CrashPoint, ALL_CRASH_POINTS};
use fsdl_labels::{DynamicConfig, DynamicError, DynamicOracle, RebuildMode};
use fsdl_testkit::Rng;

/// Serializes every store-touching test in this binary: the crash
/// injection in [`fsdl_labels::crash`] is global, and a concurrent
/// write path would consume (or trip over) another test's armed point.
fn harness_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "fsdl-wal-recovery-{tag}-{}-{k}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A random connected graph on `3..max_n` vertices: a random spanning
/// tree plus a handful of extra edges.
fn random_connected_graph(rng: &mut Rng, max_n: usize) -> Graph {
    let n = rng.gen_range(3..max_n);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as u32, i as u32).expect("in range");
    }
    for _ in 0..rng.gen_range(0..10usize) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

/// Asserts `got` and `expected` answer every ordered pair identically
/// (the "bit-identical or typed error" clause of the durability gate:
/// answers are a function of the recovered labeling + fault state, so
/// full-matrix equality is the divergence detector).
fn assert_answers_identical(got: &DynamicOracle, expected: &DynamicOracle, g: &Graph, tag: &str) {
    assert_eq!(
        got.current_faults(),
        expected.current_faults(),
        "{tag}: recovered fault set diverged"
    );
    let n = g.num_vertices();
    for s in 0..n {
        for t in 0..n {
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            assert_eq!(
                got.try_distance(s, t),
                expected.try_distance(s, t),
                "{tag}: {s}->{t} diverged after recovery"
            );
        }
    }
}

/// The deterministic crash-point matrix. One scripted update sequence on
/// a grid, with the third update crossing the rebuild threshold so that a
/// single "crash update" walks *every* point of the commit protocol: WAL
/// append, segment write, manifest swap, prune, WAL rotation. For each of
/// the 8 points: arm, crash, drop the wreck, reopen from disk, and demand
/// answers bit-identical to an oracle that never crashed — then keep
/// updating both and demand they stay identical.
#[test]
fn crash_point_matrix_recovers_bit_identically() {
    let _guard = harness_lock();
    let g = generators::grid2d(5, 5);
    let threshold = 2;
    // Updates before the crash point: two buffered, then the crasher.
    let d1 = NodeId::new(6);
    let e2 = (NodeId::new(12), NodeId::new(13));
    let d3 = NodeId::new(18);

    for point in ALL_CRASH_POINTS {
        let tag = format!("crash at {point}");
        let dir = scratch_dir(&format!("matrix-{point}"));
        let mut oracle = DynamicOracle::try_with_threshold(&g, 1.0, threshold).unwrap();
        oracle.attach_store(&dir).expect("attach");
        oracle.delete_vertex(d1).unwrap();
        oracle.delete_edge(e2.0, e2.1).unwrap();

        crash::arm(point);
        let err = oracle
            .delete_vertex(d3)
            .expect_err("the armed point must fail the update");
        crash::disarm();
        // WAL-append points reject before touching disk state for the
        // record; rebuild-path points fail the persist after the append.
        let wal_stage = matches!(
            point,
            CrashPoint::BeforeWalAppend | CrashPoint::MidWalAppend | CrashPoint::AfterWalAppend
        );
        match (&err, wal_stage) {
            (DynamicError::Wal { .. }, true) | (DynamicError::Persist { .. }, false) => {}
            _ => panic!("{tag}: unexpected error class {err:?}"),
        }
        drop(oracle);

        // The update is durable from the moment its record is fully on
        // disk: lost before/mid append, recovered from there on.
        let crasher_survives = !matches!(
            point,
            CrashPoint::BeforeWalAppend | CrashPoint::MidWalAppend
        );
        let recovered = DynamicOracle::open(&dir, &g)
            .unwrap_or_else(|e| panic!("{tag}: reopen failed with {e}"));
        let mut reference = DynamicOracle::try_with_threshold(&g, 1.0, threshold).unwrap();
        reference.delete_vertex(d1).unwrap();
        reference.delete_edge(e2.0, e2.1).unwrap();
        if crasher_survives {
            reference.delete_vertex(d3).unwrap();
        }
        assert_answers_identical(&recovered, &reference, &g, &tag);

        // Recovery must leave a fully serviceable oracle: keep updating
        // (including a restore and another threshold crossing) and stay
        // in lockstep with the never-crashed reference.
        let mut recovered = recovered;
        for step in [NodeId::new(2), NodeId::new(22), NodeId::new(11)] {
            recovered.delete_vertex(step).unwrap_or_else(|e| {
                panic!("{tag}: post-recovery delete of {step} failed with {e}")
            });
            reference.delete_vertex(step).unwrap();
        }
        recovered.restore_vertex(NodeId::new(2)).unwrap();
        reference.restore_vertex(NodeId::new(2)).unwrap();
        assert_answers_identical(&recovered, &reference, &g, &format!("{tag} (continued)"));

        // And the post-recovery store must itself reopen cleanly.
        drop(recovered);
        let reopened = DynamicOracle::open(&dir, &g)
            .unwrap_or_else(|e| panic!("{tag}: second reopen failed with {e}"));
        assert_answers_identical(&reopened, &reference, &g, &format!("{tag} (reopened)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Seed-driven randomized crash recovery over random graphs and update
/// scripts: crash a random update at a random WAL-append point and check
/// the recovered oracle against a reference that applied exactly the
/// surviving prefix.
#[test]
fn randomized_crash_recovery_matches_surviving_prefix() {
    let _guard = harness_lock();
    for seed in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0x57A1_F00D ^ seed);
        run_randomized_case(&mut rng, seed);
    }
}

fn run_randomized_case(rng: &mut Rng, seed: u64) {
    let g = random_connected_graph(rng, 20);
    let n = g.num_vertices();
    let threshold = rng.gen_range(1..4usize);
    let dir = scratch_dir(&format!("rand-{seed}"));
    let mut oracle = DynamicOracle::try_with_threshold(&g, 1.0, threshold).unwrap();
    oracle.attach_store(&dir).expect("attach");
    let mut reference = DynamicOracle::try_with_threshold(&g, 1.0, threshold).unwrap();

    // A script of distinct vertex deletions, crashing at a random step on
    // a random WAL-append point (the points every update passes through).
    let steps = rng.gen_range(1..(n - 1).max(2));
    let crash_at = rng.gen_range(0..steps);
    let point = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::MidWalAppend,
        CrashPoint::AfterWalAppend,
    ][rng.gen_range(0..3usize)];
    let mut deleted = Vec::new();
    let mut crashed = false;
    for step in 0..steps {
        // Pick a vertex not yet deleted.
        let v = loop {
            let v = NodeId::new(rng.gen_range(0..n as u32));
            if !deleted.contains(&v) {
                break v;
            }
        };
        deleted.push(v);
        if step == crash_at {
            crash::arm(point);
            let err = oracle.delete_vertex(v).expect_err("armed point must fire");
            crash::disarm();
            assert!(
                matches!(err, DynamicError::Wal { .. }),
                "seed {seed}: unexpected error {err:?}"
            );
            if point == CrashPoint::AfterWalAppend {
                reference.delete_vertex(v).unwrap();
            }
            crashed = true;
            break;
        }
        oracle.delete_vertex(v).unwrap();
        reference.delete_vertex(v).unwrap();
    }
    assert!(crashed);
    drop(oracle);
    let recovered = DynamicOracle::open(&dir, &g)
        .unwrap_or_else(|e| panic!("seed {seed}: reopen failed with {e}"));
    assert_answers_identical(&recovered, &reference, &g, &format!("seed {seed}"));
    if point == CrashPoint::MidWalAppend {
        // The torn frame must have been found and truncated, not silently
        // absorbed.
        let stats = recovered.stats();
        assert!(
            stats.replay_truncated_bytes > 0,
            "seed {seed}: mid-append crash left no torn tail to truncate"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The WAL leg of the chaos harness: scheduled bit flips, truncations,
/// and extensions of the log file must recover to a true prefix of
/// history or fail typed — the sweep itself panics on any violation.
#[test]
fn wal_chaos_sweep_rejects_or_recovers_prefixes() {
    let _guard = harness_lock();
    let g = generators::grid2d(5, 5);
    let dir = scratch_dir("chaos");
    let scratch = scratch_dir("chaos-scratch");
    // High threshold: all updates stay in the WAL (the interesting case —
    // corruption can only attack un-folded history).
    let mut oracle = DynamicOracle::try_with_threshold(&g, 1.0, 50).unwrap();
    oracle.attach_store(&dir).expect("attach");
    for v in [7u32, 11, 13] {
        oracle.delete_vertex(NodeId::new(v)).unwrap();
    }
    oracle.delete_edge(NodeId::new(0), NodeId::new(1)).unwrap();
    oracle.restore_vertex(NodeId::new(11)).unwrap();
    drop(oracle);

    let probes: Vec<_> = (0..25)
        .step_by(3)
        .flat_map(|s| {
            (0..25)
                .step_by(4)
                .map(move |t| (NodeId::new(s), NodeId::new(t)))
        })
        .collect();
    let stats = wal_corruption_sweep(&dir, &scratch, &g, &probes, 160, 0xD15C);
    assert!(stats.attempted >= 150, "sweep barely ran: {stats:?}");
    assert!(
        stats.rejected + stats.opened_sound == stats.attempted,
        "sweep accounting broken: {stats:?}"
    );
    // Truncations land on frame boundaries often enough that some cases
    // must recover a shorter prefix rather than reject.
    assert!(
        stats.opened_sound > 0,
        "no prefix recoveries at all: {stats:?}"
    );
    assert!(stats.rejected > 0, "no typed rejections at all: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Background-mode durability: churn updates with background rebuilds
/// enabled, then reopen and check soundness — the recovered fault set and
/// answers must match an in-memory oracle holding the same faults.
/// (Fold *timing* under background scheduling is nondeterministic, so the
/// contract here is fault-set equality + answer equality, not equality of
/// the internal baked/buffered split.)
#[test]
fn background_mode_store_reopens_to_same_answers() {
    let _guard = harness_lock();
    let g = generators::grid2d(6, 6);
    let dir = scratch_dir("background");
    let mut oracle = DynamicOracle::try_with_config(
        &g,
        DynamicConfig {
            epsilon: 1.0,
            threshold: Some(2),
            mode: RebuildMode::Background,
            rebuild_workers: 1,
        },
    )
    .unwrap();
    oracle.attach_store(&dir).expect("attach");
    for v in [1u32, 8, 15, 22, 29, 30] {
        oracle.delete_vertex(NodeId::new(v)).unwrap();
    }
    oracle.restore_vertex(NodeId::new(15)).unwrap();
    oracle.wait_for_rebuild();
    let faults = oracle.current_faults();
    drop(oracle);

    let recovered = DynamicOracle::open(&dir, &g).expect("reopen");
    assert_eq!(recovered.current_faults(), faults, "fault set diverged");
    let mut reference = DynamicOracle::try_with_threshold(&g, 1.0, 100).unwrap();
    for v in faults.vertices() {
        reference.delete_vertex(v).unwrap();
    }
    for e in faults.edges() {
        reference.delete_edge(e.lo(), e.hi()).unwrap();
    }
    let n = g.num_vertices();
    for s in (0..n).step_by(2) {
        for t in (0..n).step_by(3) {
            let (s, t) = (NodeId::from_index(s), NodeId::from_index(t));
            assert_eq!(
                recovered.try_distance(s, t),
                reference.try_distance(s, t),
                "{s}->{t} diverged after background-mode recovery"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-loop hygiene (the pruning satellite): orphaned `.tmp-` files and
/// stale WALs left by previous incarnations are removed by `open`, so a
/// crash loop cannot leak unbounded files into the store directory.
#[test]
fn open_prunes_tmp_artifacts_and_stale_wals() {
    let _guard = harness_lock();
    let g = generators::cycle(16);
    let dir = scratch_dir("prune");
    let mut oracle = DynamicOracle::try_with_threshold(&g, 1.0, 8).unwrap();
    oracle.attach_store(&dir).expect("attach");
    oracle.delete_vertex(NodeId::new(3)).unwrap();
    drop(oracle);

    // Litter the directory the way interrupted writers would.
    std::fs::write(dir.join(".tmp-000000-leftover"), b"junk").unwrap();
    std::fs::write(dir.join("wal-99.log"), b"stale").unwrap();
    std::fs::write(dir.join("seg-99.fsl"), b"orphan").unwrap();

    let recovered = DynamicOracle::open(&dir, &g).expect("reopen");
    assert_eq!(recovered.current_faults().len(), 1);
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with(".tmp-") || name == "wal-99.log" || name == "seg-99.fsl")
        .collect();
    assert!(leftovers.is_empty(), "litter survived open: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Prune idempotence: `open` removes *stale* WALs, and only stale WALs.
/// Repeated open/drop cycles with no intervening updates must leave the
/// active `wal-*.log` in place, byte for byte, and keep replaying to the
/// same answers — a prune pass that "cleans up" the live log would turn
/// the next crash into silent fault loss.
#[test]
fn reopen_cycles_never_prune_the_active_wal() {
    let _guard = harness_lock();
    let g = generators::grid2d(5, 5);
    let dir = scratch_dir("prune-idem");
    // A high threshold keeps both updates buffered in the WAL: the live
    // log is load-bearing state, not yet baked into a segment.
    let mut oracle = DynamicOracle::try_with_threshold(&g, 1.0, 64).unwrap();
    oracle.attach_store(&dir).expect("attach");
    oracle.delete_vertex(NodeId::new(7)).unwrap();
    oracle
        .delete_edge(NodeId::new(12), NodeId::new(13))
        .unwrap();
    drop(oracle);

    let store_listing = |dir: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    let baseline = store_listing(&dir);
    assert!(
        baseline.iter().any(|(name, bytes)| name.starts_with("wal-")
            && name.ends_with(".log")
            && !bytes.is_empty()),
        "setup must leave a non-empty active WAL; store held {:?}",
        baseline.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    let reference = DynamicOracle::open(&dir, &g).expect("reference open");
    assert_eq!(
        reference.current_faults().len(),
        2,
        "one vertex + one edge fault must replay from the WAL"
    );
    for cycle in 0..4 {
        let reopened = DynamicOracle::open(&dir, &g)
            .unwrap_or_else(|e| panic!("open cycle {cycle} failed: {e}"));
        assert_answers_identical(&reopened, &reference, &g, &format!("reopen cycle {cycle}"));
        drop(reopened);
        assert_eq!(
            store_listing(&dir),
            baseline,
            "open/drop cycle {cycle} changed the store (active WAL pruned or rewritten)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The typed-constructor satellite, exercised through the public API
/// surface used by the CLI.
#[test]
fn invalid_configs_surface_typed_errors_not_panics() {
    let g = generators::cycle(8);
    assert!(matches!(
        DynamicOracle::try_with_threshold(&g, 1.0, 0),
        Err(DynamicError::InvalidConfig { .. })
    ));
    assert!(matches!(
        DynamicOracle::try_new(&g, f64::NAN),
        Err(DynamicError::InvalidConfig { .. })
    ));
    let empty = GraphBuilder::new(0).build();
    assert!(matches!(
        DynamicOracle::try_with_config(&empty, DynamicConfig::default()),
        Err(DynamicError::InvalidConfig { .. })
    ));
    // The error is printable and carries the reason.
    let e = DynamicOracle::try_with_threshold(&g, 1.0, 0).unwrap_err();
    assert!(e.to_string().contains("threshold"));
    // A valid config still constructs, and an unused fault set is empty.
    let oracle = DynamicOracle::try_with_threshold(&g, 1.0, 3).unwrap();
    assert_eq!(oracle.current_faults(), FaultSet::empty());
}
