//! Read-only byte sources for zero-copy file access.
//!
//! The label store wants to serve a multi-gigabyte segment without copying
//! it into the heap at open time. On unix we memory-map the file
//! (`PROT_READ`, `MAP_PRIVATE`) straight through the raw C ABI — the
//! workspace is hermetic, so no `libc` crate; `std` already links the
//! platform libc and these four symbols are part of POSIX. Everywhere
//! else, and whenever the map fails (exotic filesystems, empty files),
//! we fall back to reading the file into an owned buffer behind the same
//! [`ByteSource`] trait, so callers never branch on platform.
//!
//! All the `unsafe` in the fsdl workspace lives in this one small crate;
//! every consumer (including `fsdl-labels`) keeps `forbid(unsafe_code)`.
//!
//! Soundness contract, relied on by the store's lazy open path: the
//! mapping is private and read-only, the backing segment file is
//! immutable by protocol (written once via temp-file + atomic rename and
//! never modified in place), and [`Mmap`] owns the mapping for its whole
//! lifetime — so the `&[u8]` handed out by [`ByteSource::as_bytes`] is
//! stable for as long as the source is alive, even if the file is later
//! unlinked (POSIX keeps mapped pages valid after unlink).

use std::fmt;
use std::fs::File;
use std::io::{self, Read as _};
use std::path::Path;

/// How a [`ByteSource`] holds its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Pages are memory-mapped from the file; resident set grows only as
    /// pages are touched.
    Mapped,
    /// Bytes were read into an owned heap buffer (portable fallback).
    Owned,
}

/// A stable, immutable view over a file's bytes: memory-mapped or owned,
/// same interface either way.
pub trait ByteSource: Send + Sync + fmt::Debug {
    /// The full contents of the file at open time.
    fn as_bytes(&self) -> &[u8];

    /// Whether the bytes are mapped or owned.
    fn kind(&self) -> SourceKind;
}

/// Owned-buffer source: the portable read-file fallback.
pub struct OwnedBytes {
    bytes: Vec<u8>,
}

impl OwnedBytes {
    /// Read `path` fully into an owned buffer.
    pub fn read(path: &Path) -> io::Result<OwnedBytes> {
        let mut f = File::open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Ok(OwnedBytes { bytes })
    }

    /// Wrap an in-memory buffer (used by tests and by writers that just
    /// produced the bytes).
    pub fn from_vec(bytes: Vec<u8>) -> OwnedBytes {
        OwnedBytes { bytes }
    }
}

impl ByteSource for OwnedBytes {
    fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Owned
    }
}

impl fmt::Debug for OwnedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OwnedBytes")
            .field("len", &self.bytes.len())
            .finish()
    }
}

/// Open `path` preferring a memory map, falling back to an owned read on
/// any mapping failure or on platforms without mmap. Infallible apart
/// from genuine I/O errors (file missing, permission denied, ...).
pub fn open(path: &Path) -> io::Result<Box<dyn ByteSource>> {
    #[cfg(unix)]
    {
        match Mmap::map(path) {
            Ok(m) => return Ok(Box::new(m)),
            Err(_) => {
                // Fall through: e.g. zero-length file (EINVAL), a
                // filesystem that refuses mappings, or fd exhaustion.
            }
        }
    }
    Ok(Box::new(OwnedBytes::read(path)?))
}

/// Open `path` with the portable owned-buffer path, never mapping. Used
/// where the caller wants deterministic eager semantics (full copy, no
/// page-fault surprises) or to exercise the fallback in tests.
pub fn open_owned(path: &Path) -> io::Result<Box<dyn ByteSource>> {
    Ok(Box::new(OwnedBytes::read(path)?))
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    use super::{ByteSource, SourceKind};
    use std::fmt;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    // POSIX mmap ABI. `std` links the platform libc, so these symbols
    // resolve without any external crate. Values below are identical on
    // Linux and the BSD family (including macOS) for the flags we use.
    mod ffi {
        use std::os::raw::{c_int, c_void};

        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }
    }

    /// A read-only, private memory mapping of an entire file.
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ | MAP_PRIVATE — no writer exists,
    // the kernel owns the pages, and `ptr` is valid for `len` bytes until
    // `munmap` in Drop. Shared immutable access from any thread is sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map the whole of `path` read-only. Fails (rather than
        /// panicking) on zero-length files and on any kernel refusal;
        /// callers fall back to an owned read.
        pub fn map(path: &Path) -> io::Result<Mmap> {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            // SAFETY: fd is valid for the duration of the call; we request
            // a fresh private read-only mapping chosen by the kernel.
            let ptr = unsafe {
                ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    ffi::PROT_READ,
                    ffi::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return Err(io::Error::last_os_error());
            }
            // The fd can be closed now; the mapping keeps the pages alive.
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// Length of the mapping in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the mapping is empty (never constructed today, but
        /// keeps the clippy `len_without_is_empty` contract honest).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl ByteSource for Mmap {
        fn as_bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until Drop runs; the file behind it is
            // immutable by store protocol.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }

        fn kind(&self) -> SourceKind {
            SourceKind::Mapped
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                ffi::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }

    impl fmt::Debug for Mmap {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mmap").field("len", &self.len).finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsdl-mmap-{}-{}", name, std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("file.bin")
    }

    #[test]
    fn mapped_and_owned_agree() {
        let path = scratch("agree");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&path, &payload).unwrap();

        let owned = open_owned(&path).unwrap();
        assert_eq!(owned.kind(), SourceKind::Owned);
        assert_eq!(owned.as_bytes(), &payload[..]);

        let pref = open(&path).unwrap();
        assert_eq!(pref.as_bytes(), &payload[..]);
        #[cfg(unix)]
        assert_eq!(pref.kind(), SourceKind::Mapped);
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = scratch("empty");
        fs::write(&path, b"").unwrap();
        let src = open(&path).unwrap();
        assert_eq!(src.kind(), SourceKind::Owned);
        assert!(src.as_bytes().is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = scratch("missing").with_file_name("no-such-file.bin");
        assert!(open(&path).is_err());
        assert!(open_owned(&path).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mapping_survives_unlink() {
        let path = scratch("unlink");
        fs::write(&path, vec![0xabu8; 4096]).unwrap();
        let m = Mmap::map(&path).unwrap();
        fs::remove_file(&path).unwrap();
        assert_eq!(m.len(), 4096);
        assert!(!m.is_empty());
        assert!(m.as_bytes().iter().all(|&b| b == 0xab));
    }

    #[cfg(unix)]
    #[test]
    fn bytes_stable_across_threads() {
        let path = scratch("threads");
        let payload: Vec<u8> = (0..65_536u32).map(|i| (i % 256) as u8).collect();
        fs::write(&path, &payload).unwrap();
        let m = std::sync::Arc::new(Mmap::map(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                let want = payload.clone();
                std::thread::spawn(move || assert_eq!(m.as_bytes(), &want[..]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
