//! Greedy `r`-net construction (the paper's Fact 1, after Gupta,
//! Krauthgamer & Lee).
//!
//! `W(r)` is built by iterating over the vertices in id order: whenever an
//! uncovered vertex `v` is met it joins `W(r)` and every vertex at distance
//! `< r` from it becomes covered. The resulting set is
//!
//! * an `(r−1)`-dominating set for unweighted graphs and integral `r ≥ 1`
//!   (every vertex is within `r−1` of some net point), and
//! * an `r`-packing (net points are pairwise at distance `≥ r`),
//!
//! which together give the packing bound `|B(v, R) ∩ W(r)| ≤ (4R/r)^α` in a
//! graph of doubling dimension `α`.

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{Graph, NodeId};

/// Computes the greedy `r`-net `W(r)` of `g`, iterating vertices in id
/// order (deterministic).
///
/// # Panics
///
/// Panics if `r == 0`.
///
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// use fsdl_nets::greedy_net;
///
/// let g = generators::path(10);
/// let w = greedy_net(&g, 3);
/// // Path vertices 0..10, each chosen point covers { u : d(u, v) < 3 }.
/// assert_eq!(w, vec![0, 3, 6, 9].into_iter().map(fsdl_graph::NodeId::new).collect::<Vec<_>>());
/// ```
pub fn greedy_net(g: &Graph, r: u32) -> Vec<NodeId> {
    assert!(r >= 1, "net radius must be at least 1");
    let n = g.num_vertices();
    let mut covered = vec![false; n];
    let mut net = Vec::new();
    if r == 1 {
        // W(1) = V(G): every vertex covers only itself.
        return g.vertices().collect();
    }
    let mut scratch = BfsScratch::new(n);
    for v in g.vertices() {
        if covered[v.index()] {
            continue;
        }
        net.push(v);
        // Cover all u with d_G(u, v) < r, i.e. <= r - 1.
        for m in bfs::ball(g, v, r - 1, &mut scratch) {
            covered[m.vertex.index()] = true;
        }
    }
    net
}

/// Checks that `net` is an `(r−1)`-dominating `r`-packing of `g`:
/// every vertex is within `r−1` of the net *within its own component*, and
/// net points are pairwise at distance `≥ r`.
///
/// Returns the first violation found, or `None` if the net is valid. Used by
/// tests and the packing audit.
pub fn validate_net(g: &Graph, net: &[NodeId], r: u32) -> Option<NetViolation> {
    let (dist, _) = bfs::multi_source(g, net);
    for v in g.vertices() {
        match dist[v.index()].finite() {
            Some(d) if d <= r.saturating_sub(1) => {}
            Some(d) => {
                return Some(NetViolation::NotDominated { vertex: v, dist: d });
            }
            None => {
                // Unreachable from the net entirely: only acceptable if v's
                // component contains no net point at all, which the greedy
                // construction never produces — every component's first
                // vertex joins the net.
                return Some(NetViolation::NotDominated {
                    vertex: v,
                    dist: u32::MAX,
                });
            }
        }
    }
    // Packing: BFS from each net point truncated at r-1 must meet no other
    // net point.
    let mut is_net = vec![false; g.num_vertices()];
    for &p in net {
        is_net[p.index()] = true;
    }
    let mut scratch = BfsScratch::new(g.num_vertices());
    for &p in net {
        for m in bfs::ball(g, p, r - 1, &mut scratch) {
            if m.vertex != p && is_net[m.vertex.index()] {
                return Some(NetViolation::TooClose {
                    a: p,
                    b: m.vertex,
                    dist: m.dist,
                });
            }
        }
    }
    None
}

/// A violation reported by [`validate_net`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetViolation {
    /// A vertex farther than `r−1` from every net point (`u32::MAX` when in
    /// a component without net points).
    NotDominated {
        /// The undominated vertex.
        vertex: NodeId,
        /// Its distance to the nearest net point.
        dist: u32,
    },
    /// Two net points closer than `r`.
    TooClose {
        /// First net point.
        a: NodeId,
        /// Second net point.
        b: NodeId,
        /// Their distance (`< r`).
        dist: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn net_radius_one_is_everything() {
        let g = generators::cycle(6);
        let w = greedy_net(&g, 1);
        assert_eq!(w.len(), 6);
        assert_eq!(validate_net(&g, &w, 1), None);
    }

    #[test]
    fn path_net_spacing() {
        let g = generators::path(20);
        for r in [2u32, 3, 4, 8] {
            let w = greedy_net(&g, r);
            assert_eq!(validate_net(&g, &w, r), None, "r = {r}");
        }
    }

    #[test]
    fn grid_net_valid() {
        let g = generators::grid2d(9, 9);
        for r in [2u32, 4, 8, 16] {
            let w = greedy_net(&g, r);
            assert_eq!(validate_net(&g, &w, r), None, "r = {r}");
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn large_radius_single_point_per_component() {
        let g = generators::grid2d(5, 5);
        let w = greedy_net(&g, 100);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0], NodeId::new(0));
    }

    #[test]
    fn disconnected_components_each_get_points() {
        let mut b = fsdl_graph::GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let g = b.build();
        let w = greedy_net(&g, 10);
        assert_eq!(w.len(), 2);
        assert_eq!(validate_net(&g, &w, 10), None);
    }

    #[test]
    fn validate_detects_bad_nets() {
        let g = generators::path(10);
        // Too sparse: single point with small radius.
        let bad = vec![NodeId::new(0)];
        assert!(matches!(
            validate_net(&g, &bad, 3),
            Some(NetViolation::NotDominated { .. })
        ));
        // Too dense: adjacent points with radius 3.
        let bad = vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(4),
            NodeId::new(7),
        ];
        assert!(matches!(
            validate_net(&g, &bad, 3),
            Some(NetViolation::TooClose { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let g = generators::random_geometric(200, 0.1, 5);
        assert_eq!(greedy_net(&g, 4), greedy_net(&g, 4));
    }
}
