//! The hierarchy of nets `N_0 ⊇ N_1 ⊇ ⋯ ⊇ N_{⌈log n⌉}` (paper Section 2.1,
//! Lemma 2.2).
//!
//! `N_i = ∪_{j=i}^{⌈log n⌉} W(2^j)` where `W(r)` is the greedy `r`-net, so
//! the hierarchy satisfies:
//!
//! 1. `N_i` is a `(2^i − 1)`-dominating set (property 1);
//! 2. `N_i ⊆ N_{i−1}` (property 2);
//! 3. the packing bound `|B(v, R) ∩ N_i| ≤ 2·(4R/2^i)^α` (Lemma 2.2).
//!
//! A vertex is summarized by its *net level* — the largest `i` with
//! `v ∈ N_i` — which is all the decoder needs to know about net membership
//! (and costs `O(log log n)` bits per stored point).

use fsdl_graph::bfs;
use fsdl_graph::{Dist, Graph, NodeId};

use crate::greedy::greedy_net;
use crate::parallel;

/// Ceiling of `log₂ n` for `n ≥ 1` (`0` for `n ≤ 1`).
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The hierarchy of nets over a graph, with precomputed nearest-net-point
/// maps `M_i(v)`.
///
/// # Examples
///
/// ```
/// use fsdl_graph::generators;
/// use fsdl_nets::NetHierarchy;
///
/// let g = generators::grid2d(8, 8);
/// let nets = NetHierarchy::build(&g);
/// // N_0 = V(G); higher levels thin out.
/// assert_eq!(nets.net_points(0).count(), 64);
/// assert!(nets.net_points(nets.top_level()).count() >= 1);
/// // Every vertex has a nearest net point within 2^i - 1.
/// let (m, d) = nets.nearest(fsdl_graph::NodeId::new(27), 2).unwrap();
/// assert!(d <= 3);
/// # let _ = m;
/// ```
#[derive(Clone, Debug)]
pub struct NetHierarchy {
    top_level: u32,
    /// `net_level[v]` = largest `i` with `v ∈ N_i` (every vertex is in
    /// `N_0`).
    net_level: Vec<u32>,
    /// Per level `i`: distance from each vertex to `N_i` and the nearest
    /// net point (`M_i(v)`), ties broken toward the smallest id.
    nearest: Vec<(Vec<Dist>, Vec<Option<NodeId>>)>,
    /// Per level `i`: the points of `N_i` in increasing id order,
    /// precomputed at build so [`NetHierarchy::net_points`] reads a slice
    /// instead of filtering all `n` entries of `net_level`.
    by_level: Vec<Vec<NodeId>>,
}

impl NetHierarchy {
    /// Builds the hierarchy for `g` by computing `W(2^j)` for every
    /// `j ≤ ⌈log n⌉` and the per-level nearest-point maps.
    ///
    /// Runs in `O(Σ_j Σ_{x∈W(2^j)} |B(x, 2^j)|)` = polynomial time.
    ///
    /// # Panics
    ///
    /// Panics if `g` has no vertices.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "hierarchy needs a nonempty graph");
        let top_level = ceil_log2(n);
        // net_level[v] = max j with v ∈ W(2^j); N_i membership is
        // net_level[v] >= i. W(2^0) = V so the default 0 is correct.
        //
        // The per-level greedy nets are independent of each other, as are
        // the per-level nearest maps, so both phases fan out over scoped
        // threads; results are merged in level order, so the hierarchy is
        // bit-identical to a sequential build.
        let nets_by_level: Vec<Vec<NodeId>> = parallel::run_indexed(top_level as usize, |k| {
            greedy_net(g, 1u32 << (k as u32 + 1))
        });
        let mut net_level = vec![0u32; n];
        for (k, w) in nets_by_level.iter().enumerate() {
            // Levels in increasing order, so later (sparser) nets overwrite.
            for p in w {
                net_level[p.index()] = k as u32 + 1;
            }
        }
        // One ascending pass over net_level materializes every level's
        // point list (ascending vertex order per level, identical to the
        // per-level filter it replaces).
        let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); top_level as usize + 1];
        for (v, &l) in net_level.iter().enumerate() {
            for level in &mut by_level[..=l as usize] {
                level.push(NodeId::from_index(v));
            }
        }
        let by_level_ref = &by_level;
        let nearest = parallel::run_indexed(top_level as usize + 1, |i| {
            bfs::multi_source(g, &by_level_ref[i])
        });
        NetHierarchy {
            top_level,
            net_level,
            nearest,
            by_level,
        }
    }

    /// The top level `⌈log n⌉`.
    pub fn top_level(&self) -> u32 {
        self.top_level
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.net_level.len()
    }

    /// The largest `i` with `v ∈ N_i`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn level_of(&self, v: NodeId) -> u32 {
        self.net_level[v.index()]
    }

    /// Is `v ∈ N_i`?
    pub fn is_in_net(&self, v: NodeId, i: u32) -> bool {
        self.net_level[v.index()] >= i
    }

    /// Iterates over the points of `N_i` in increasing id order.
    ///
    /// Levels above [`NetHierarchy::top_level`] are empty.
    pub fn net_points(&self, i: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.by_level
            .get(i as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// `M_i(v)`: the net point of `N_i` nearest to `v`, with its distance.
    ///
    /// Returns `None` only when `v`'s connected component contains no point
    /// of `N_i`, which the greedy construction never produces for `i ≤`
    /// [`NetHierarchy::top_level`]. Levels above the top return `None`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn nearest(&self, v: NodeId, i: u32) -> Option<(NodeId, u32)> {
        let (dist, owner) = self.nearest.get(i as usize)?;
        let m = (*owner.get(v.index())?)?;
        Some((m, dist[v.index()].finite().expect("owner implies finite")))
    }

    /// `d_G(v, N_i)`, or `None` when unreachable / level out of range.
    pub fn distance_to_net(&self, v: NodeId, i: u32) -> Option<u32> {
        let (dist, _) = self.nearest.get(i as usize)?;
        dist[v.index()].finite()
    }

    /// `|N_i|` for every level `0..=top` — how the hierarchy thins out.
    /// Computed in a single pass over `net_level`: a histogram of maximal
    /// levels, suffix-summed (since `v ∈ N_i ⟺ net_level[v] ≥ i`).
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.top_level as usize + 1];
        for &l in &self.net_level {
            sizes[l as usize] += 1;
        }
        for i in (0..self.top_level as usize).rev() {
            sizes[i] += sizes[i + 1];
        }
        sizes
    }

    /// Audits the packing bound of Lemma 2.2 on sampled balls: checks
    /// `|B(v, R) ∩ N_i| ≤ 2·(4R/2^i)^alpha` for the given `alpha`, returning
    /// the first violating `(v, i, R, count, bound)` if any.
    ///
    /// `samples` are `(v, i, R)` triples to test.
    pub fn audit_packing(
        &self,
        g: &Graph,
        alpha: u32,
        samples: &[(NodeId, u32, u32)],
    ) -> Option<PackingViolation> {
        let mut scratch = fsdl_graph::bfs::BfsScratch::new(g.num_vertices());
        for &(v, i, radius) in samples {
            if i > self.top_level || radius == 0 {
                continue;
            }
            let count = bfs::ball(g, v, radius, &mut scratch)
                .iter()
                .filter(|m| self.is_in_net(m.vertex, i))
                .count();
            let ratio = 4.0 * radius as f64 / (1u64 << i) as f64;
            let bound = 2.0 * ratio.powi(alpha as i32);
            if (count as f64) > bound {
                return Some(PackingViolation {
                    center: v,
                    level: i,
                    radius,
                    count,
                    bound,
                });
            }
        }
        None
    }
}

/// A violation of the Lemma 2.2 packing bound found by
/// [`NetHierarchy::audit_packing`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PackingViolation {
    /// Ball center.
    pub center: NodeId,
    /// Net level `i`.
    pub level: u32,
    /// Ball radius `R`.
    pub radius: u32,
    /// Observed `|B(center, R) ∩ N_i|`.
    pub count: usize,
    /// The bound `2·(4R/2^i)^α` that was exceeded.
    pub bound: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn level_zero_is_everything() {
        let g = generators::cycle(10);
        let nets = NetHierarchy::build(&g);
        assert_eq!(nets.net_points(0).count(), 10);
        for v in g.vertices() {
            assert!(nets.is_in_net(v, 0));
            let (m, d) = nets.nearest(v, 0).unwrap();
            assert_eq!(m, v);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn nesting_property() {
        let g = generators::grid2d(10, 10);
        let nets = NetHierarchy::build(&g);
        for i in 1..=nets.top_level() {
            let upper: Vec<NodeId> = nets.net_points(i).collect();
            for p in upper {
                assert!(nets.is_in_net(p, i - 1), "N_{i} ⊄ N_{}", i - 1);
            }
        }
    }

    #[test]
    fn domination_property() {
        // Property (1): N_i is (2^i - 1)-dominating.
        let g = generators::grid2d(12, 7);
        let nets = NetHierarchy::build(&g);
        for i in 0..=nets.top_level() {
            for v in g.vertices() {
                let d = nets.distance_to_net(v, i).expect("connected graph");
                assert!(d < (1u32 << i), "v{} at distance {d} from N_{i}", v.raw());
            }
        }
    }

    #[test]
    fn nearest_is_truly_nearest() {
        let g = generators::path(33);
        let nets = NetHierarchy::build(&g);
        for i in 0..=nets.top_level() {
            let pts: Vec<NodeId> = nets.net_points(i).collect();
            for v in g.vertices() {
                let (_, d) = nets.nearest(v, i).unwrap();
                let brute = pts
                    .iter()
                    .map(|&p| v.raw().abs_diff(p.raw()))
                    .min()
                    .unwrap();
                assert_eq!(d, brute);
            }
        }
    }

    #[test]
    fn top_level_singletonish() {
        // N_top is a (n-1)-dominating set; on a connected graph one point
        // per graph suffices (greedy picks exactly one).
        let g = generators::grid2d(6, 6);
        let nets = NetHierarchy::build(&g);
        let top: Vec<NodeId> = nets.net_points(nets.top_level()).collect();
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn single_vertex_graph() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let nets = NetHierarchy::build(&g);
        assert_eq!(nets.top_level(), 0);
        assert_eq!(nets.nearest(NodeId::new(0), 0), Some((NodeId::new(0), 0)));
    }

    #[test]
    fn levels_beyond_top_are_empty() {
        let g = generators::path(4);
        let nets = NetHierarchy::build(&g);
        assert_eq!(nets.net_points(nets.top_level() + 1).count(), 0);
        assert_eq!(nets.nearest(NodeId::new(0), nets.top_level() + 5), None);
    }

    #[test]
    fn packing_audit_grid() {
        let g = generators::grid2d(16, 16);
        let nets = NetHierarchy::build(&g);
        // A 2-D mesh has doubling dimension ~2; audit with alpha = 2.
        let mut samples = Vec::new();
        for v in [0u32, 17, 130, 255] {
            for i in 1..=nets.top_level() {
                for radius in [1u32 << i, 2u32 << i] {
                    samples.push((NodeId::new(v), i, radius));
                }
            }
        }
        assert_eq!(nets.audit_packing(&g, 2, &samples), None);
    }

    #[test]
    fn packing_audit_catches_absurd_alpha() {
        // With alpha = 0 the bound 2·(4R/2^i)^0 = 2 is violated on any
        // nontrivial graph at level 0 (N_0 = V).
        let g = generators::grid2d(8, 8);
        let nets = NetHierarchy::build(&g);
        let samples = vec![(NodeId::new(27), 0u32, 2u32)];
        assert!(nets.audit_packing(&g, 0, &samples).is_some());
    }

    #[test]
    fn level_sizes_decreasing() {
        let g = generators::grid2d(10, 10);
        let nets = NetHierarchy::build(&g);
        let sizes = nets.level_sizes();
        assert_eq!(sizes[0], 100);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(*sizes.last().unwrap(), 1);
    }

    #[test]
    fn level_sizes_and_net_points_match_naive_rescan() {
        let g = generators::random_geometric(120, 0.13, 5);
        let nets = NetHierarchy::build(&g);
        let naive_sizes: Vec<usize> = (0..=nets.top_level())
            .map(|i| nets.net_level.iter().filter(|&&l| l >= i).count())
            .collect();
        assert_eq!(nets.level_sizes(), naive_sizes);
        for i in 0..=nets.top_level() + 1 {
            let naive: Vec<NodeId> = (0..g.num_vertices())
                .map(NodeId::from_index)
                .filter(|v| nets.net_level[v.index()] >= i)
                .collect();
            assert_eq!(nets.net_points(i).collect::<Vec<_>>(), naive, "level {i}");
        }
    }

    #[test]
    fn deterministic_build() {
        let g = generators::random_geometric(150, 0.11, 9);
        let a = NetHierarchy::build(&g);
        let b = NetHierarchy::build(&g);
        assert_eq!(a.net_level, b.net_level);
    }
}
