//! # fsdl-nets — hierarchical nets for doubling-dimension algorithms
//!
//! Implements the net machinery of Section 2.1 of *Forbidden-set distance
//! labels for graphs of bounded doubling dimension*:
//!
//! * [`greedy_net`] — the greedy `r`-net `W(r)` of Fact 1 (an
//!   `(r−1)`-dominating `r`-packing);
//! * [`NetHierarchy`] — the nested hierarchy
//!   `N_i = ∪_{j≥i} W(2^j)` with properties (1) & (2) of the paper and the
//!   Lemma 2.2 packing bound, plus precomputed nearest-net-point maps
//!   `M_i(v)`;
//! * validation and audit hooks ([`validate_net`],
//!   [`NetHierarchy::audit_packing`]) used by the test-suite and the
//!   evaluation harness to certify the theory-side invariants on every
//!   workload;
//! * [`Spanner`] — the classic `(1+ε)`-spanner built from the same
//!   hierarchy (cross edges between net points at every scale), a
//!   companion artifact and sanity mirror for the labels;
//! * [`parallel`] — the deterministic indexed fan-out over scoped threads
//!   that the hierarchy build uses, exported for the label builder and the
//!   oracle's batched query engine (index-order merge keeps every parallel
//!   run bit-identical to the sequential one).
//!
//! ## Example
//!
//! ```
//! use fsdl_graph::{generators, NodeId};
//! use fsdl_nets::NetHierarchy;
//!
//! let g = generators::grid2d(10, 10);
//! let nets = NetHierarchy::build(&g);
//! let v = NodeId::new(55);
//! for i in 0..=nets.top_level() {
//!     let (_, d) = nets.nearest(v, i).expect("connected");
//!     assert!(d <= (1 << i) - 1, "N_i must be (2^i - 1)-dominating");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod greedy;
mod hierarchy;
pub mod parallel;
mod spanner;

pub use greedy::{greedy_net, validate_net, NetViolation};
pub use hierarchy::{ceil_log2, NetHierarchy, PackingViolation};
pub use spanner::Spanner;
