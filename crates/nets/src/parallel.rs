//! Deterministic fan-out of independent indexed jobs over scoped threads.
//!
//! The net hierarchy, the label builder, and the oracle's batched query
//! front-end all share the same shape of parallelism: `count` independent
//! jobs, each identified by its index, whose results must be merged *in
//! index order* so the parallel run is bit-identical to a sequential one.
//! This module is that pattern, promoted from the private helper that
//! [`crate::NetHierarchy::build`] started with.
//!
//! Work is distributed dynamically (an atomic cursor), so uneven job costs
//! balance across workers; result order is fixed by index, so determinism
//! never depends on scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count for `count` jobs: `available_parallelism`,
/// capped by the job count (never 0).
pub fn default_workers(count: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(count.max(1))
}

/// The worker count for *background* work that must not starve a serving
/// foreground: `available_parallelism - 1` (one core stays free for the
/// query path), never 0, capped by the job count.
pub fn background_workers(count: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    avail.saturating_sub(1).max(1).min(count.max(1))
}

/// Normalizes a user-facing worker-count argument: `0` means "use
/// [`default_workers`]" (available parallelism), anything else is taken
/// literally but capped by the job count (never below 1). Every
/// worker-count knob — `fsdl label --threads`, `prewarm_workers`,
/// `query_batch_workers`, `materialize_all_workers` — resolves through
/// this one helper so `0` behaves identically everywhere.
pub fn resolve_workers(requested: usize, count: usize) -> usize {
    if requested == 0 {
        default_workers(count)
    } else {
        requested.min(count.max(1))
    }
}

/// Runs `job(0), …, job(count-1)` across up to
/// [`default_workers`]`(count)` scoped threads and returns the results in
/// index order.
///
/// # Examples
///
/// ```
/// let squares = fsdl_nets::parallel::run_indexed(8, |k| k * k);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_indexed<T, F>(count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_workers(count, default_workers(count), job)
}

/// [`run_indexed`] with an explicit worker count (`workers <= 1` runs the
/// jobs sequentially on the calling thread). Results are in index order
/// regardless of the worker count, so any two runs agree bit for bit.
pub fn run_indexed_workers<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(count, workers, || (), |(), k| job(k))
}

/// The per-worker-state variant: each worker thread calls `init()` once to
/// build its private scratch state (BFS buffers, Dijkstra heaps, …) and
/// reuses it across every job it claims. Results are merged in index order;
/// with `workers <= 1` a single state serves a sequential loop.
///
/// # Examples
///
/// ```
/// // Each worker reuses one buffer across its share of the jobs.
/// let out = fsdl_nets::parallel::run_indexed_with(
///     4,
///     2,
///     Vec::new,
///     |buf: &mut Vec<usize>, k| {
///         buf.push(k);
///         k + 10
///     },
/// );
/// assert_eq!(out, vec![10, 11, 12, 13]);
/// ```
pub fn run_indexed_with<S, T, I, F>(count: usize, workers: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        let mut state = init();
        return (0..count).map(|k| job(&mut state, k)).collect();
    }
    let workers = workers.min(count);
    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots = Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= count {
                        break;
                    }
                    let result = job(&mut state, k);
                    let mut guard = slots.lock().expect("no poisoned workers");
                    guard[k] = Some(result);
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every job computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_counts() {
        assert_eq!(run_indexed(0, |k| k), Vec::<usize>::new());
        assert_eq!(run_indexed(1, |k| k + 5), vec![5]);
        assert_eq!(run_indexed_workers(3, 0, |k| k), vec![0, 1, 2]);
    }

    #[test]
    fn order_is_by_index_for_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|k| k * 3).collect();
        for workers in [1, 2, 4, 16, 200] {
            assert_eq!(
                run_indexed_workers(97, workers, |k| k * 3),
                expected,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn default_workers_bounds() {
        assert_eq!(default_workers(0), 1);
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1000) >= 1);
    }

    #[test]
    fn background_workers_leave_one_core_and_never_zero() {
        assert_eq!(background_workers(0), 1);
        assert_eq!(background_workers(1), 1);
        let avail = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(background_workers(1000), avail.saturating_sub(1).max(1));
        assert!(background_workers(1000) <= default_workers(1000).max(1));
    }

    #[test]
    fn resolve_workers_normalizes_zero_and_caps() {
        // 0 means available parallelism (capped by the job count).
        assert_eq!(resolve_workers(0, 1000), default_workers(1000));
        assert_eq!(resolve_workers(0, 1), 1);
        assert_eq!(resolve_workers(0, 0), 1);
        // Explicit counts are honored but capped by the job count.
        assert_eq!(resolve_workers(3, 1000), 3);
        assert_eq!(resolve_workers(8, 2), 2);
        assert_eq!(resolve_workers(5, 0), 1);
        assert_eq!(resolve_workers(1, 64), 1);
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        // Each worker's counter only ever grows; totals must cover all jobs
        // exactly once.
        let hits = Mutex::new(Vec::new());
        let out = run_indexed_with(
            64,
            4,
            || 0usize,
            |claimed, k| {
                *claimed += 1;
                hits.lock().unwrap().push(k);
                k
            },
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let mut seen = hits.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_with_state() {
        let seq = run_indexed_with(40, 1, || 7usize, |s, k| k * *s);
        let par = run_indexed_with(40, 8, || 7usize, |s, k| k * *s);
        assert_eq!(seq, par);
    }
}
