//! `(1+ε)`-spanners from the net hierarchy.
//!
//! A classic companion construction on the same machinery the labels use
//! (and a useful sanity mirror for them): connect every pair of `N_i` net
//! points at distance `≤ γ·2^i` with a weighted edge carrying their exact
//! graph distance, for `γ = 3 + 32/ε`. The resulting weighted graph `S`
//! satisfies `d_G(u,v) ≤ d_S(u,v) ≤ (1+ε)·d_G(u,v)` for every pair:
//!
//! * *climbing*: `d(M_k(u), M_{k+1}(u)) < 3·2^k ≤ γ·2^k`, so the chain
//!   `u = M_0(u), M_1(u), …, M_j(u)` exists in `S` and costs `< 3·2^j`;
//! * *crossing*: for `j` with `ε·d/32 ≤ 2^j ≤ ε·d/16`, the cross edge
//!   `(M_j(u), M_j(v))` exists (`d(M_j(u), M_j(v)) < d + 2·2^j ≤ γ·2^j`);
//! * total: `d_S ≤ d + 8·2^j ≤ (1 + ε/2)·d`; for `d < 16/ε` the level-0
//!   direct edge `(u, v)` already exists.
//!
//! By the packing bound the spanner has `n · (O(1)/ε)^α · log n` edges —
//! the same exponential-in-`α` constants as the labels, measured honestly
//! by [`Spanner::num_edges`].

use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{Dist, Graph, NodeId, SketchGraph};

use crate::hierarchy::NetHierarchy;

/// A weighted `(1+ε)`-spanner of a graph's shortest-path metric.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, NodeId};
/// use fsdl_nets::Spanner;
///
/// let g = generators::grid2d(6, 6);
/// let s = Spanner::build(&g, 1.0);
/// let d = s.distance(NodeId::new(0), NodeId::new(35)).finite().unwrap();
/// assert!(d >= 10 && d <= 20); // within (1+eps) of the true 10
/// ```
#[derive(Clone, Debug)]
pub struct Spanner {
    n: usize,
    epsilon: f64,
    edges: Vec<(NodeId, NodeId, u32)>,
    sketch: SketchGraph,
}

impl Spanner {
    /// Builds the spanner of `g` at precision `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or `epsilon` is not positive finite.
    pub fn build(g: &Graph, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be a positive finite number"
        );
        let n = g.num_vertices();
        assert!(n > 0, "spanner needs a nonempty graph");
        let nets = NetHierarchy::build(g);
        let gamma = 3.0 + 32.0 / epsilon;
        let mut edges = Vec::new();
        let mut scratch = BfsScratch::new(n);
        for i in 0..=nets.top_level() {
            let radius_f = gamma * (1u64 << i) as f64;
            let radius = radius_f.min(n as f64) as u32;
            for x in nets.net_points(i).collect::<Vec<_>>() {
                for m in bfs::ball(g, x, radius, &mut scratch) {
                    // Each cross pair once (y > x); level-i requires both
                    // endpoints in N_i.
                    if m.vertex > x && nets.is_in_net(m.vertex, i) {
                        edges.push((x, m.vertex, m.dist));
                    }
                }
            }
        }
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        edges.dedup_by_key(|&mut (a, b, _)| (a, b));
        let mut sketch = SketchGraph::new();
        for v in g.vertices() {
            sketch.intern(v);
        }
        for &(a, b, w) in &edges {
            sketch.add_edge(a, b, u64::from(w));
        }
        Spanner {
            n,
            epsilon,
            edges,
            sketch,
        }
    }

    /// Number of vertices of the spanned graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) weighted spanner edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The precision this spanner was built for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Iterates over the weighted edges `(x, y, d_G(x, y))`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// The spanner distance `d_S(u, v)`: between `d_G(u, v)` and
    /// `(1+ε)·d_G(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Dist {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "vertex out of range"
        );
        match self.sketch.shortest_distance(u, v) {
            Some(d) => Dist::new(u32::try_from(d.min(u64::from(u32::MAX - 1))).expect("clamped")),
            None => Dist::INFINITE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{generators, FaultSet};

    fn check_stretch(g: &Graph, eps: f64, pairs: &[(u32, u32)]) {
        let s = Spanner::build(g, eps);
        for &(u, v) in pairs {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            let truth = bfs::pair_distance_avoiding(g, u, v, &FaultSet::empty());
            let ds = s.distance(u, v);
            match truth.finite() {
                Some(td) => {
                    let sd = ds.finite().expect("spanner preserves connectivity");
                    assert!(sd >= td, "spanner shortcut {u}->{v}: {sd} < {td}");
                    assert!(
                        f64::from(sd) <= (1.0 + eps) * f64::from(td) + 1e-9,
                        "stretch violated {u}->{v}: {sd} vs {td}"
                    );
                }
                None => assert!(ds.is_infinite()),
            }
        }
    }

    #[test]
    fn path_spanner_exact() {
        let g = generators::path(64);
        let pairs: Vec<(u32, u32)> = (0..64).map(|k| (0, k)).collect();
        check_stretch(&g, 1.0, &pairs);
    }

    #[test]
    fn grid_spanner_stretch() {
        let g = generators::grid2d(9, 9);
        let mut pairs = Vec::new();
        for s in (0..81).step_by(7) {
            for t in (0..81).step_by(5) {
                pairs.push((s, t));
            }
        }
        check_stretch(&g, 1.0, &pairs);
        check_stretch(&g, 0.5, &pairs);
    }

    #[test]
    fn tree_spanner_stretch() {
        let g = generators::balanced_tree(3, 4);
        let pairs: Vec<(u32, u32)> = (0..121).map(|k| (k, 120 - k)).collect();
        check_stretch(&g, 2.0, &pairs);
    }

    #[test]
    fn disconnected_graph_preserved() {
        let mut b = fsdl_graph::GraphBuilder::new(6);
        b.add_edges([(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let g = b.build();
        let s = Spanner::build(&g, 1.0);
        assert!(s.distance(NodeId::new(0), NodeId::new(5)).is_infinite());
        assert_eq!(s.distance(NodeId::new(0), NodeId::new(2)).finite(), Some(2));
    }

    #[test]
    fn spanner_size_grows_with_precision() {
        let g = generators::grid2d(10, 10);
        let loose = Spanner::build(&g, 4.0);
        let tight = Spanner::build(&g, 0.5);
        assert!(tight.num_edges() >= loose.num_edges());
        assert!(loose.num_edges() > 0);
    }

    #[test]
    fn level_zero_includes_graph_edges() {
        // gamma >= 3, so every adjacent pair (distance 1) gets a level-0
        // edge: the spanner contains G itself.
        let g = generators::cycle(12);
        let s = Spanner::build(&g, 1.0);
        for e in g.edges() {
            assert!(
                s.edges()
                    .any(|(a, b, w)| a == e.lo() && b == e.hi() && w == 1),
                "missing graph edge {e}"
            );
        }
    }

    #[test]
    fn single_vertex() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let s = Spanner::build(&g, 1.0);
        assert_eq!(s.num_edges(), 0);
        assert_eq!(s.distance(NodeId::new(0), NodeId::new(0)).finite(), Some(0));
    }
}
