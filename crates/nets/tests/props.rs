//! Property-based tests for the net hierarchy: the Lemma 2.2 invariants on
//! arbitrary graphs.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_nets::{greedy_net, validate_net, NetHierarchy};
use fsdl_testkit::Rng;

fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(1usize..32);
    let mut b = GraphBuilder::new(n);
    for _ in 0..rng.gen_range(0..60usize) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

#[test]
fn greedy_net_is_valid() {
    fsdl_testkit::check("greedy_net_is_valid", 48, |rng| {
        let g = random_graph(rng);
        let r = rng.gen_range(1u32..12);
        let net = greedy_net(&g, r);
        assert_eq!(validate_net(&g, &net, r), None);
    });
}

#[test]
fn greedy_net_contains_vertex_zero() {
    fsdl_testkit::check("greedy_net_contains_vertex_zero", 48, |rng| {
        // Vertex 0 is always uncovered first, so it joins every net.
        let g = random_graph(rng);
        let r = rng.gen_range(1u32..12);
        let net = greedy_net(&g, r);
        assert!(net.contains(&NodeId::new(0)));
    });
}

#[test]
fn hierarchy_nesting_and_domination() {
    fsdl_testkit::check("hierarchy_nesting_and_domination", 48, |rng| {
        let g = random_graph(rng);
        let nets = NetHierarchy::build(&g);
        for i in 0..=nets.top_level() {
            // Nesting.
            if i > 0 {
                for p in nets.net_points(i) {
                    assert!(nets.is_in_net(p, i - 1));
                }
            }
            // (2^i - 1)-domination within components.
            for v in g.vertices() {
                let d = nets
                    .distance_to_net(v, i)
                    .expect("greedy covers components");
                assert!(d < (1u32 << i), "v{} at {} from N_{}", v.raw(), d, i);
            }
        }
    });
}

#[test]
fn nearest_matches_exhaustive() {
    fsdl_testkit::check("nearest_matches_exhaustive", 48, |rng| {
        let g = random_graph(rng);
        let level = rng.gen_range(0u32..6);
        let nets = NetHierarchy::build(&g);
        let i = level.min(nets.top_level());
        let pts: Vec<NodeId> = nets.net_points(i).collect();
        for v in g.vertices() {
            let (m, d) = nets.nearest(v, i).expect("covered");
            // m really is a net point at the claimed distance.
            assert!(nets.is_in_net(m, i));
            let dm = bfs::pair_distance_avoiding(&g, v, m, &FaultSet::empty());
            assert_eq!(dm.finite(), Some(d));
            // No closer net point exists.
            for &p in &pts {
                let dp = bfs::pair_distance_avoiding(&g, v, p, &FaultSet::empty());
                if let Some(dp) = dp.finite() {
                    assert!(dp >= d, "closer net point {p} at {dp}");
                }
            }
        }
    });
}

#[test]
fn net_points_pairwise_separated() {
    fsdl_testkit::check("net_points_pairwise_separated", 48, |rng| {
        // The public invariant worth checking at the top of the hierarchy:
        // N_top has at most one point per component.
        let g = random_graph(rng);
        let nets = NetHierarchy::build(&g);
        let top: Vec<NodeId> = nets.net_points(nets.top_level()).collect();
        let comps = fsdl_graph::connectivity::component_labels(&g);
        let mut seen = std::collections::HashSet::new();
        for p in top {
            assert!(
                seen.insert(comps[p.index()]),
                "two top points in one component"
            );
        }
    });
}
