//! Property-based tests for the net hierarchy: the Lemma 2.2 invariants on
//! arbitrary graphs.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_nets::{greedy_net, validate_net, NetHierarchy};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..32).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge(a, c).expect("in range");
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_net_is_valid(g in arb_graph(), r in 1u32..12) {
        let net = greedy_net(&g, r);
        prop_assert_eq!(validate_net(&g, &net, r), None);
    }

    #[test]
    fn greedy_net_contains_vertex_zero(g in arb_graph(), r in 1u32..12) {
        // Vertex 0 is always uncovered first, so it joins every net.
        let net = greedy_net(&g, r);
        prop_assert!(net.contains(&NodeId::new(0)));
    }

    #[test]
    fn hierarchy_nesting_and_domination(g in arb_graph()) {
        let nets = NetHierarchy::build(&g);
        for i in 0..=nets.top_level() {
            // Nesting.
            if i > 0 {
                for p in nets.net_points(i) {
                    prop_assert!(nets.is_in_net(p, i - 1));
                }
            }
            // (2^i - 1)-domination within components.
            for v in g.vertices() {
                let d = nets.distance_to_net(v, i).expect("greedy covers components");
                prop_assert!(d < (1u32 << i), "v{} at {} from N_{}", v.raw(), d, i);
            }
        }
    }

    #[test]
    fn nearest_matches_exhaustive(g in arb_graph(), level in 0u32..6) {
        let nets = NetHierarchy::build(&g);
        let i = level.min(nets.top_level());
        let pts: Vec<NodeId> = nets.net_points(i).collect();
        for v in g.vertices() {
            let (m, d) = nets.nearest(v, i).expect("covered");
            // m really is a net point at the claimed distance.
            prop_assert!(nets.is_in_net(m, i));
            let dm = bfs::pair_distance_avoiding(&g, v, m, &FaultSet::empty());
            prop_assert_eq!(dm.finite(), Some(d));
            // No closer net point exists.
            for &p in &pts {
                let dp = bfs::pair_distance_avoiding(&g, v, p, &FaultSet::empty());
                if let Some(dp) = dp.finite() {
                    prop_assert!(dp >= d, "closer net point {} at {}", p, dp);
                }
            }
        }
    }

    #[test]
    fn net_points_pairwise_separated(g in arb_graph(), j in 1u32..5) {
        // Points of W(2^j) are pairwise >= 2^j apart; the union N_i only
        // guarantees separation per W, but level_of encodes the max j, and
        // points with level_of >= j that entered at W(2^j)... the public
        // invariant worth checking: N_top has at most one point per
        // component.
        let _ = j;
        let nets = NetHierarchy::build(&g);
        let top: Vec<NodeId> = nets.net_points(nets.top_level()).collect();
        let comps = fsdl_graph::connectivity::component_labels(&g);
        let mut seen = std::collections::HashSet::new();
        for p in top {
            prop_assert!(seen.insert(comps[p.index()]), "two top points in one component");
        }
    }
}
