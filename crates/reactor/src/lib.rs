//! Readiness notification for the fsdl serving layer.
//!
//! The server's event loop needs exactly one primitive: "which of these
//! file descriptors can make progress right now?". On Linux that is
//! `epoll` (O(ready) wakeups, no per-wait re-registration); everywhere
//! else POSIX `poll(2)` does the same job with an O(registered) scan per
//! wait. Both are reached straight through the raw C ABI — the workspace
//! is hermetic, so no `libc` crate; `std` already links the platform
//! libc and every symbol used here is POSIX (or, for epoll, a stable
//! Linux syscall wrapper that has been in glibc/musl for two decades).
//!
//! Like `fsdl-mmap`, this crate is one of the two places in the
//! workspace where `unsafe` is allowed to live; every consumer
//! (including `fsdl-server`) keeps `forbid(unsafe_code)`. The unsafe
//! surface is small and uniform: passing pointers to locally owned,
//! correctly sized buffers into four syscalls.
//!
//! ## Semantics
//!
//! Registration is level-triggered on both backends: an fd that is
//! readable keeps reporting readable until drained. Tokens are opaque
//! `u64`s chosen by the caller and echoed back in [`Event`]s — the
//! caller maps them to connections; the poller never interprets them.
//! Closing an fd without deregistering it is a caller bug the poll
//! backend surfaces as `POLLNVAL` ([`Event::error`]); always
//! [`Poller::deregister`] first.

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness directions a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (data, EOF, or a pending accept).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state. The caller
    /// should attempt a read — it will observe the EOF/error — and
    /// close.
    pub error: bool,
}

/// Which syscall family backs a [`Poller`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` (the platform default on Linux).
    Epoll,
    /// POSIX `poll(2)` (the portable fallback, available everywhere).
    Poll,
}

/// A readiness poller over registered file descriptors.
pub struct Poller {
    inner: Inner,
}

enum Inner {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(fallback::PollSet),
}

impl Poller {
    /// Opens the platform-default poller: epoll on Linux, `poll(2)`
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// Opens a poller on a specific backend. [`Backend::Poll`] works on
    /// every unix; [`Backend::Epoll`] only on Linux (elsewhere it is an
    /// [`io::ErrorKind::Unsupported`] error).
    ///
    /// # Errors
    ///
    /// Backend unavailable on this platform, or fd exhaustion.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    Ok(Poller {
                        inner: Inner::Epoll(epoll::Epoll::new()?),
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only; use Backend::Poll",
                    ))
                }
            }
            Backend::Poll => Ok(Poller {
                inner: Inner::Poll(fallback::PollSet::new()),
            }),
        }
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(_) => Backend::Epoll,
            Inner::Poll(_) => Backend::Poll,
        }
    }

    /// Registers `fd` with `token` and `interest`. The fd must stay open
    /// until [`Poller::deregister`].
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure; the poll backend rejects double
    /// registration of the same fd.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.ctl(epoll::CTL_ADD, fd, token, interest),
            Inner::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes an existing registration's token or interest.
    ///
    /// # Errors
    ///
    /// The fd is not registered, or `epoll_ctl` failed.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.ctl(epoll::CTL_MOD, fd, token, interest),
            Inner::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Removes `fd` from the poller. Call *before* closing the fd.
    ///
    /// # Errors
    ///
    /// The fd was not registered.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.ctl(epoll::CTL_DEL, fd, 0, Interest::READABLE),
            Inner::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = block indefinitely). Ready events are appended
    /// to `events` (cleared first); returns how many. A signal
    /// interruption returns `Ok(0)` — callers loop anyway.
    ///
    /// # Errors
    ///
    /// Propagates syscall failure (not `EINTR`).
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms = timeout_to_ms(timeout);
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            Inner::Epoll(e) => e.wait(events, timeout_ms),
            Inner::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

/// Converts an optional timeout to the millisecond convention both
/// syscalls share (`-1` = infinite), rounding *up* so a sub-millisecond
/// deadline never turns into a busy spin.
fn timeout_to_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

/// The process's soft limit on open file descriptors, if the kernel
/// reports one. Idle-heavy tests and experiments use this to size their
/// connection fleets below the ceiling instead of dying on `EMFILE`.
pub fn fd_soft_limit() -> Option<u64> {
    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: std::os::raw::c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: std::os::raw::c_int = 8;
    extern "C" {
        fn getrlimit(resource: std::os::raw::c_int, rlim: *mut Rlimit) -> std::os::raw::c_int;
    }
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid, exclusively owned rlimit-shaped buffer
    // for the duration of the call; getrlimit writes it or fails.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc == 0 {
        Some(lim.rlim_cur)
    } else {
        None
    }
}

/// [`fd_soft_limit`] with a conservative fallback instead of an
/// `Option`: when the kernel cannot report a limit (exotic or sandboxed
/// unix where `getrlimit` fails), this logs the substitution to stderr
/// and returns `fallback`. Fleet-sizing callers should prefer this over
/// unwrapping — "every unix reports RLIMIT_NOFILE" is an assumption,
/// not a guarantee, and dying on it turns a degraded environment into
/// an outage.
pub fn fd_soft_limit_or(fallback: u64) -> u64 {
    match fd_soft_limit() {
        Some(limit) => limit,
        None => {
            eprintln!(
                "note: getrlimit(RLIMIT_NOFILE) failed; \
                 assuming a conservative fd limit of {fallback}"
            );
            fallback
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    //! The Linux fast path: one epoll instance per poller, O(ready)
    //! wakeups regardless of how many idle connections are registered.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    pub const CTL_ADD: c_int = 1;
    pub const CTL_DEL: c_int = 2;
    pub const CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86-64 only,
    /// exactly as the kernel ABI declares it.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Capacity of the per-wait event buffer. More ready fds than this
    /// simply surface on the next wait (level-triggered), so the value
    /// trades one syscall against stack churn, nothing else.
    const WAIT_BATCH: usize = 256;

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: no pointers; returns a fresh fd or -1.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
            })
        }

        pub fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event owned by this frame;
            // for CTL_DEL the kernel ignores it (a non-null pointer is
            // still passed for pre-2.6.9 compatibility).
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `buf` is a live, correctly sized EpollEvent array;
            // the kernel writes at most `WAIT_BATCH` entries.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for raw in &self.buf[..rc as usize] {
                let bits = raw.events;
                out.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(rc as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `epfd` came from a successful epoll_create1 and is
            // closed exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

mod fallback {
    //! Portable `poll(2)`: the registration table lives in userspace and
    //! the pollfd array is rebuilt per wait — O(registered) per call,
    //! which is exactly why Linux gets epoll above.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    /// POSIX `struct pollfd` — identical layout on every unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    struct Registration {
        fd: RawFd,
        token: u64,
        interest: Interest,
    }

    pub struct PollSet {
        regs: Vec<Registration>,
        buf: Vec<PollFd>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                regs: Vec::new(),
                buf: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.regs.iter().any(|r| r.fd == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.regs.push(Registration {
                fd,
                token,
                interest,
            });
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let reg = self
                .regs
                .iter_mut()
                .find(|r| r.fd == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            reg.token = token;
            reg.interest = interest;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|r| r.fd != fd);
            if self.regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            self.buf.clear();
            for reg in &self.regs {
                let mut events = 0;
                if reg.interest.readable {
                    events |= POLLIN;
                }
                if reg.interest.writable {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd: reg.fd,
                    events,
                    revents: 0,
                });
            }
            // SAFETY: `buf` is a live pollfd array of exactly `nfds`
            // entries; poll only writes the `revents` fields.
            let rc = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as NfdsT, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let mut n = 0;
            for (pfd, reg) in self.buf.iter().zip(&self.regs) {
                let got = pfd.revents;
                if got == 0 {
                    continue;
                }
                out.push(Event {
                    token: reg.token,
                    readable: got & (POLLIN | POLLHUP) != 0,
                    writable: got & POLLOUT != 0,
                    error: got & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
                n += 1;
            }
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    #[test]
    fn readable_only_when_data_is_pending() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (mut a, mut b) = pair();
            poller
                .register(a.as_raw_fd(), 7, Interest::READABLE)
                .expect("register");

            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: no data yet, no events");

            b.write_all(b"ping").expect("write");
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            assert!(!events[0].writable, "{backend:?}: read-only interest");

            // Level-triggered: still readable until drained.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}: level-triggered readiness persists");
            let mut buf = [0u8; 16];
            let got = a.read(&mut buf).expect("read");
            assert_eq!(&buf[..got], b"ping");
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: drained fd goes quiet");
        }
    }

    #[test]
    fn writable_and_modify_and_deregister() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (a, _b) = pair();
            poller
                .register(a.as_raw_fd(), 1, Interest::WRITABLE)
                .expect("register");
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}: fresh socket is writable");
            assert!(events[0].writable);

            // Downgrade to read interest: writability stops reporting.
            poller
                .modify(a.as_raw_fd(), 2, Interest::READABLE)
                .expect("modify");
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: no reads pending after modify");

            poller.deregister(a.as_raw_fd()).expect("deregister");
            assert!(
                poller.deregister(a.as_raw_fd()).is_err(),
                "{backend:?}: double deregister is an error"
            );
        }
    }

    #[test]
    fn hangup_reports_readable_so_callers_observe_eof() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (a, b) = pair();
            poller
                .register(a.as_raw_fd(), 3, Interest::READABLE)
                .expect("register");
            drop(b);
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}");
            assert!(
                events[0].readable,
                "{backend:?}: hangup must surface as readable (read -> 0)"
            );
        }
    }

    #[test]
    fn interleaved_registrations_report_their_own_tokens() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (a1, mut b1) = pair();
            let (a2, mut b2) = pair();
            poller
                .register(a1.as_raw_fd(), 10, Interest::READABLE)
                .expect("register");
            poller
                .register(a2.as_raw_fd(), 20, Interest::READABLE)
                .expect("register");
            b2.write_all(b"x").expect("write");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 20, "{backend:?}: only conn 2 has data");
            b1.write_all(b"y").expect("write");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            let mut tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
            tokens.sort_unstable();
            assert_eq!(tokens, vec![10, 20], "{backend:?}: both now pending");
        }
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        // A 100µs timeout must not become 0ms (that would busy-spin).
        assert_eq!(timeout_to_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_to_ms(Some(Duration::from_millis(25))), 25);
        assert_eq!(timeout_to_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_to_ms(None), -1);

        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (a, _b) = pair();
            poller
                .register(a.as_raw_fd(), 1, Interest::READABLE)
                .expect("register");
            let start = Instant::now();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .expect("wait");
            let waited = start.elapsed();
            assert!(
                waited >= Duration::from_millis(25),
                "{backend:?}: timeout honored (waited {waited:?})"
            );
        }
    }

    #[test]
    fn fd_limit_is_reported_or_falls_back() {
        // A kernel that fails `getrlimit` must degrade to the fallback,
        // not panic — fleet sizing runs inside tests and experiments
        // where an abort would take the whole suite down.
        let limit = fd_soft_limit_or(256);
        assert!(limit >= 64, "implausible fd limit {limit}");
        if let Some(reported) = fd_soft_limit() {
            assert_eq!(limit, reported, "fallback must not shadow a real limit");
        }
    }
}
