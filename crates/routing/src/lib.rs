//! # fsdl-routing — forbidden-set compact routing (Theorem 2.7)
//!
//! Extends the forbidden-set distance labels of [`fsdl_labels`] into a
//! routing scheme with stretch `1+ε` and `O(1+ε⁻¹)^{2α} log² n`-bit routing
//! tables: each vertex stores, for every vertex named in its label, the
//! outgoing port on a shortest path toward it ([`RoutingTable`]). A packet
//! carries as header the waypoint sequence computed by the label decoder;
//! forwarding between consecutive waypoints is purely local and — because
//! sketch edges are safe — never touches the forbidden set. The
//! [`Network`] simulator delivers packets hop by hop and verifies every
//! claim (table coverage, fault avoidance, stretch) empirically.
//!
//! ## Example
//!
//! ```
//! use fsdl_graph::{generators, FaultSet, NodeId};
//! use fsdl_routing::Network;
//!
//! let g = generators::grid2d(6, 6);
//! let net = Network::new(&g, 1.0);
//! let faults = FaultSet::from_vertices([NodeId::new(14)]);
//! let d = net.route(NodeId::new(0), NodeId::new(35), &faults).unwrap();
//! assert!(d.hops >= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recovery;
mod simulator;
mod table;

pub use recovery::{PacketOutcome, RecoverySim};
pub use simulator::{AdaptiveDelivery, Delivery, Network, RouteFailure};
pub use table::{RoutingScheme, RoutingTable};
