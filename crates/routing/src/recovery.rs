//! Fleet-level fast-recovery simulation: the paper's failure-propagation
//! protocol.
//!
//! The paper's applications section sketches how forbidden-set routing
//! recovers from failures without global route maintenance: every router
//! keeps a local failed-set `F_u`; failure knowledge spreads by probing
//! (a router discovers a dead neighbour when forwarding to it fails) and by
//! *piggybacking* (knowledge rides on packets, so "all routers on this path
//! will learn about the failure"). A packet that reaches a better-informed
//! router is immediately rerouted with a fresh label query.
//!
//! [`RecoverySim`] implements exactly that protocol on top of the
//! [`Network`] simulator, so the evaluation can measure how quickly the
//! fleet converges to full awareness and how delivery quality behaves
//! during the transient.

use fsdl_graph::{FaultSet, NodeId};
use fsdl_labels::DecodeScratch;

use crate::simulator::{Network, RouteFailure};

/// Outcome of one packet in the recovery simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketOutcome {
    /// Every vertex visited.
    pub path: Vec<NodeId>,
    /// Edges traversed.
    pub hops: usize,
    /// Header recomputations en route (discoveries or better-informed
    /// routers).
    pub reroutes: usize,
    /// Routers whose local knowledge grew because of this packet.
    pub routers_informed: usize,
}

/// A network of routers with *per-router* failure knowledge, converging via
/// probing and piggybacking.
#[derive(Debug)]
pub struct RecoverySim {
    network: Network,
    ground_truth: FaultSet,
    knowledge: Vec<FaultSet>,
    /// Decode buffers reused across every replan query the simulation
    /// issues — the rerouting loop is exactly the serving-loop shape the
    /// allocation-free fast path exists for.
    scratch: DecodeScratch,
}

impl RecoverySim {
    /// Creates the simulation over `network` with no failures yet.
    pub fn new(network: Network) -> Self {
        let n = network.labeling().graph().num_vertices();
        RecoverySim {
            network,
            ground_truth: FaultSet::empty(),
            knowledge: vec![FaultSet::empty(); n],
            scratch: DecodeScratch::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The real (global) failure set.
    pub fn ground_truth(&self) -> &FaultSet {
        &self.ground_truth
    }

    /// Fails a vertex. Only its *neighbours* would notice by probing; here
    /// nobody is informed until traffic discovers it.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fail_vertex(&mut self, v: NodeId) {
        assert!(
            self.network.labeling().graph().contains(v),
            "vertex out of range"
        );
        self.ground_truth.forbid_vertex(v);
    }

    /// Fails an edge.
    ///
    /// # Panics
    ///
    /// Panics if `{a, b}` is not an edge of the graph.
    pub fn fail_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            self.network.labeling().graph().has_edge(a, b),
            "not an edge of the graph"
        );
        self.ground_truth.forbid_edge_unchecked(a, b);
    }

    /// Recovers a vertex: removed from the ground truth and from every
    /// router's knowledge (the paper's recovery propagation, simplified to
    /// an instant broadcast — the interesting transient is failure, not
    /// recovery).
    pub fn recover_vertex(&mut self, v: NodeId) {
        self.ground_truth.permit_vertex(v);
        for k in &mut self.knowledge {
            k.permit_vertex(v);
        }
    }

    /// Fraction of `(live router, failure)` pairs where the router already
    /// knows the failure — 1.0 means the fleet has fully converged.
    pub fn awareness(&self) -> f64 {
        let faults: Vec<_> = self.ground_truth.vertices().collect();
        let fault_edges: Vec<_> = self.ground_truth.edges().collect();
        let total_items = faults.len() + fault_edges.len();
        if total_items == 0 {
            return 1.0;
        }
        let mut known = 0usize;
        let mut live = 0usize;
        for (r, k) in self.knowledge.iter().enumerate() {
            if self.ground_truth.is_vertex_faulty(NodeId::from_index(r)) {
                continue;
            }
            live += 1;
            known += faults.iter().filter(|&&f| k.is_vertex_faulty(f)).count();
            known += fault_edges
                .iter()
                .filter(|e| k.is_edge_faulty(e.lo(), e.hi()))
                .count();
        }
        if live == 0 {
            1.0
        } else {
            known as f64 / (live * total_items) as f64
        }
    }

    /// Sends one packet from `s` to `t` using only local knowledge:
    /// `s` computes the header from `F_s`; every visited router merges the
    /// packet's carried knowledge (and vice versa), rerouting whenever it
    /// knows strictly more than the packet or a probe fails.
    ///
    /// # Errors
    ///
    /// `Unreachable` when `t` cannot be reached given what was learned
    /// (which equals true unreachability once awareness suffices);
    /// `ForbiddenEndpoint` for failed endpoints;
    /// [`RouteFailure::NoProgress`] / [`RouteFailure::InvalidPort`] when a
    /// scheme invariant is violated (surfaced rather than panicking).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn send(&mut self, s: NodeId, t: NodeId) -> Result<PacketOutcome, RouteFailure> {
        let g = self.network.labeling().graph().clone();
        assert!(g.contains(s) && g.contains(t), "endpoint out of range");
        if self.ground_truth.is_vertex_faulty(s) || self.ground_truth.is_vertex_faulty(t) {
            return Err(RouteFailure::ForbiddenEndpoint);
        }
        let mut carried = self.knowledge[s.index()].clone();
        let mut path = vec![s];
        let mut cur = s;
        let mut reroutes = 0usize;
        let mut informed = 0usize;
        let budget = self.ground_truth.len() * 2 + 4;
        'replan: loop {
            let answer = self
                .network
                .oracle()
                .query_with(cur, t, &carried, &mut self.scratch);
            if answer.distance.is_infinite() {
                // Share what the packet learned before dropping it.
                self.merge_into_router(cur, &carried, &mut informed);
                return Err(RouteFailure::Unreachable);
            }
            for &waypoint in answer.path.iter().skip(1) {
                while cur != waypoint {
                    // Knowledge exchange at the current router.
                    let grew_packet = merge(&mut carried, &self.knowledge[cur.index()]);
                    self.merge_into_router(cur, &carried.clone(), &mut informed);
                    if grew_packet {
                        // Better-informed router: recompute immediately
                        // (the paper's "make a new query" step).
                        reroutes += 1;
                        if reroutes > budget {
                            return Err(RouteFailure::NoProgress { at: cur, reroutes });
                        }
                        continue 'replan;
                    }
                    let table = self.network.table(cur);
                    let Some(port) = table.port_toward(waypoint) else {
                        return Err(RouteFailure::MissingTableEntry { at: cur, waypoint });
                    };
                    let Some(next) = g.neighbor_at_port(cur, port as usize) else {
                        return Err(RouteFailure::InvalidPort {
                            at: cur,
                            port: port as usize,
                        });
                    };
                    if self.ground_truth.blocks_traversal(cur, next) {
                        // Probe failed: discover and replan from here.
                        if self.ground_truth.is_vertex_faulty(next) {
                            carried.forbid_vertex(next);
                        }
                        if self.ground_truth.is_edge_faulty(cur, next) {
                            carried.forbid_edge_unchecked(cur, next);
                        }
                        self.merge_into_router(cur, &carried.clone(), &mut informed);
                        reroutes += 1;
                        if reroutes > budget {
                            return Err(RouteFailure::NoProgress { at: cur, reroutes });
                        }
                        continue 'replan;
                    }
                    path.push(next);
                    cur = next;
                }
            }
            // Delivered: the destination also learns.
            self.merge_into_router(t, &carried, &mut informed);
            return Ok(PacketOutcome {
                hops: path.len() - 1,
                path,
                reroutes,
                routers_informed: informed,
            });
        }
    }

    fn merge_into_router(&mut self, r: NodeId, carried: &FaultSet, informed: &mut usize) {
        if merge(&mut self.knowledge[r.index()], carried) {
            *informed += 1;
        }
    }
}

/// Merges `src` into `dst`; returns `true` if `dst` grew.
fn merge(dst: &mut FaultSet, src: &FaultSet) -> bool {
    let mut grew = false;
    for v in src.vertices() {
        grew |= dst.forbid_vertex(v);
    }
    for e in src.edges() {
        grew |= dst.forbid_edge_unchecked(e.lo(), e.hi());
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;

    #[test]
    fn traffic_spreads_failure_knowledge() {
        let g = generators::cycle(24);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_vertex(NodeId::new(6));
        assert_eq!(sim.awareness(), 0.0);
        // A packet aimed through the failure discovers it and informs every
        // router on its realized path.
        let out = sim.send(NodeId::new(2), NodeId::new(10)).unwrap();
        assert!(out.reroutes >= 1);
        assert!(out.routers_informed > 0);
        assert!(sim.awareness() > 0.0);
        // The sender now knows; its next packet routes around directly.
        let out2 = sim.send(NodeId::new(2), NodeId::new(10)).unwrap();
        assert_eq!(out2.reroutes, 0);
    }

    #[test]
    fn awareness_converges_under_traffic() {
        let g = generators::grid2d(6, 6);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_vertex(NodeId::new(14));
        sim.fail_vertex(NodeId::new(21));
        let mut last = 0.0;
        for k in 0..60u32 {
            let s = NodeId::new((k * 7) % 36);
            let t = NodeId::new((k * 13 + 5) % 36);
            if sim.ground_truth().is_vertex_faulty(s) || sim.ground_truth().is_vertex_faulty(t) {
                continue;
            }
            let _ = sim.send(s, t);
            let a = sim.awareness();
            assert!(a >= last - 1e-12, "awareness must be monotone");
            last = a;
        }
        assert!(last > 0.5, "traffic should spread knowledge (got {last})");
    }

    #[test]
    fn delivered_packets_avoid_all_real_faults() {
        let g = generators::grid2d(5, 5);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_vertex(NodeId::new(12));
        for k in 0..20u32 {
            let s = NodeId::new((k * 3) % 25);
            let t = NodeId::new((k * 11 + 1) % 25);
            if s == NodeId::new(12) || t == NodeId::new(12) {
                continue;
            }
            if let Ok(out) = sim.send(s, t) {
                for w in out.path.windows(2) {
                    assert!(!sim.ground_truth().blocks_traversal(w[0], w[1]));
                }
                assert_eq!(out.path.last(), Some(&t));
            }
        }
    }

    #[test]
    fn recovery_clears_knowledge() {
        let g = generators::cycle(12);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_vertex(NodeId::new(3));
        let _ = sim.send(NodeId::new(1), NodeId::new(5));
        assert!(sim.awareness() > 0.0);
        sim.recover_vertex(NodeId::new(3));
        assert_eq!(sim.awareness(), 1.0); // vacuously: no faults left
        let out = sim.send(NodeId::new(1), NodeId::new(5)).unwrap();
        assert_eq!(out.hops, 4);
    }

    #[test]
    fn edge_failures_discovered() {
        let g = generators::cycle(16);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_edge(NodeId::new(4), NodeId::new(5));
        let out = sim.send(NodeId::new(2), NodeId::new(8)).unwrap();
        assert!(out.reroutes >= 1);
        for w in out.path.windows(2) {
            assert!(!sim.ground_truth().is_edge_faulty(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_discovered_late() {
        let g = generators::path(9);
        let mut sim = RecoverySim::new(Network::new(&g, 1.0));
        sim.fail_vertex(NodeId::new(4));
        assert_eq!(
            sim.send(NodeId::new(0), NodeId::new(8)),
            Err(RouteFailure::Unreachable)
        );
        // The sender learned the failure in the process.
        assert!(sim.awareness() > 0.0);
    }
}
