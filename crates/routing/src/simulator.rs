//! Message-passing simulation of the forbidden-set routing scheme.
//!
//! A packet from `s` to `t` under forbidden set `F` carries a *header*: the
//! sequence of waypoints of the sketch-graph path computed by the label
//! decoder (length `O((1+ε⁻¹)^{2α} log n)` vertex names, as in the paper).
//! Each intermediate vertex forwards toward the next waypoint using only
//! its local routing table; per Theorem 2.7 every vertex on the shortest
//! path between consecutive waypoints has the waypoint in its table, and —
//! because admitted sketch edges are *safe* — no forwarding step ever
//! touches a forbidden vertex or edge. The simulator verifies both claims
//! at every hop and reports the realized hop count, so routing stretch is
//! measured end to end.

use std::sync::{Arc, OnceLock};

use fsdl_graph::{FaultSet, Graph, NodeId};
use fsdl_labels::{ForbiddenSetOracle, Labeling};
use fsdl_nets::ceil_log2;

use crate::table::{RoutingScheme, RoutingTable};

/// Why a routed packet failed to reach its destination.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteFailure {
    /// The decoder reported `s` and `t` disconnected in `G ∖ F`.
    Unreachable,
    /// An endpoint is itself forbidden.
    ForbiddenEndpoint,
    /// A vertex lacked a table entry for the next waypoint (would violate
    /// Theorem 2.7; surfaced for auditability rather than panicking).
    MissingTableEntry {
        /// The forwarding vertex.
        at: NodeId,
        /// The waypoint it could not resolve.
        waypoint: NodeId,
    },
    /// A forwarding step attempted to traverse a forbidden vertex or edge
    /// (would violate edge safety; surfaced for auditability).
    TraversedFault {
        /// The forwarding vertex.
        from: NodeId,
        /// The forbidden next hop.
        to: NodeId,
    },
    /// A routing table named a port with no corresponding neighbour (a
    /// corrupted or stale table; surfaced for auditability).
    InvalidPort {
        /// The forwarding vertex.
        at: NodeId,
        /// The dangling port number.
        port: usize,
    },
    /// Rerouting stopped making progress: either a reroute was triggered
    /// without learning a new fault, or the reroute budget (each reroute
    /// must discover at least one new fault) was exhausted.
    NoProgress {
        /// The vertex where progress stalled.
        at: NodeId,
        /// Reroutes performed before stalling.
        reroutes: usize,
    },
}

impl std::fmt::Display for RouteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteFailure::Unreachable => write!(f, "destination unreachable in G \\ F"),
            RouteFailure::ForbiddenEndpoint => write!(f, "source or destination is forbidden"),
            RouteFailure::MissingTableEntry { at, waypoint } => {
                write!(f, "no table entry at {at} for waypoint {waypoint}")
            }
            RouteFailure::TraversedFault { from, to } => {
                write!(f, "forwarding {from} -> {to} would traverse a fault")
            }
            RouteFailure::InvalidPort { at, port } => {
                write!(f, "table at {at} names invalid port {port}")
            }
            RouteFailure::NoProgress { at, reroutes } => {
                write!(f, "rerouting stalled at {at} after {reroutes} reroutes")
            }
        }
    }
}

/// Outcome of adaptive routing with en-route failure discovery
/// ([`Network::route_adaptive`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptiveDelivery {
    /// Every vertex visited, from `s` to `t` inclusive (may backtrack).
    pub path: Vec<NodeId>,
    /// Number of edges traversed.
    pub hops: usize,
    /// How many times an en-route router recomputed the header after
    /// discovering a failure.
    pub reroutes: usize,
    /// The failures discovered along the way (subset of the global set).
    pub discovered: usize,
}

/// A successfully delivered packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Every vertex visited, from `s` to `t` inclusive.
    pub path: Vec<NodeId>,
    /// Number of edges traversed (`path.len() - 1`).
    pub hops: usize,
    /// The header carried by the packet (waypoint sequence).
    pub header: Vec<NodeId>,
    /// Header size in bits (`|header| × ⌈log n⌉`).
    pub header_bits: usize,
}

/// A simulated network running the forbidden-set routing scheme.
///
/// # Examples
///
/// ```
/// use fsdl_graph::{generators, FaultSet, NodeId};
/// use fsdl_routing::Network;
///
/// let g = generators::cycle(24);
/// let net = Network::new(&g, 1.0);
/// let faults = FaultSet::from_vertices([NodeId::new(1)]);
/// let d = net.route(NodeId::new(0), NodeId::new(3), &faults).unwrap();
/// assert_eq!(d.path.first(), Some(&NodeId::new(0)));
/// assert_eq!(d.path.last(), Some(&NodeId::new(3)));
/// assert!(d.hops >= 21); // forced the long way around the ring
/// ```
#[derive(Debug)]
pub struct Network {
    oracle: ForbiddenSetOracle,
    tables: Box<[OnceLock<Arc<RoutingTable>>]>,
}

impl Network {
    /// Builds the network state (labels + routing tables) for `g` with
    /// precision `epsilon`. The network is `Send + Sync` — one instance can
    /// serve routing requests from many threads (tables, like labels, are
    /// memoized in a per-vertex `OnceLock` arena).
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or `epsilon` is not positive finite.
    pub fn new(g: &Graph, epsilon: f64) -> Self {
        Self::from_oracle(ForbiddenSetOracle::new(g, epsilon))
    }

    /// Wraps an existing oracle — notably one warm-started from a label
    /// store via [`ForbiddenSetOracle::open`], so a network can begin
    /// serving without rebuilding any labels. Routing tables are still
    /// derived on demand from the (store-decoded or freshly built) labels.
    pub fn from_oracle(oracle: ForbiddenSetOracle) -> Self {
        let n = oracle.labeling().graph().num_vertices();
        Network {
            oracle,
            tables: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The oracle (decoder side) used to compute headers.
    pub fn oracle(&self) -> &ForbiddenSetOracle {
        &self.oracle
    }

    /// The labeling underlying this network.
    pub fn labeling(&self) -> &Labeling {
        self.oracle.labeling()
    }

    /// Returns (materializing and memoizing) the routing table of `v`.
    ///
    /// Thread-safe: the table is built at most once; later calls are
    /// lock-free pointer clones.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn table(&self, v: NodeId) -> Arc<RoutingTable> {
        self.tables[v.index()]
            .get_or_init(|| {
                let scheme = RoutingScheme::new(self.oracle.labeling());
                Arc::new(scheme.table_of(v))
            })
            .clone()
    }

    /// Routes a packet from `s` to `t` under forbidden set `F`.
    ///
    /// # Errors
    ///
    /// Returns a [`RouteFailure`] when delivery is impossible (disconnected,
    /// forbidden endpoint) or — which the test-suite asserts never happens —
    /// when a scheme invariant is violated.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn route(&self, s: NodeId, t: NodeId, faults: &FaultSet) -> Result<Delivery, RouteFailure> {
        let g = self.oracle.labeling().graph();
        assert!(g.contains(s) && g.contains(t), "endpoint out of range");
        if faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t) {
            return Err(RouteFailure::ForbiddenEndpoint);
        }
        // Header computation: the source queries the decoder with the labels
        // of s, t, F (exactly the information the model grants it).
        let answer = self.oracle.query(s, t, faults);
        if answer.distance.is_infinite() {
            return Err(RouteFailure::Unreachable);
        }
        let header = answer.path.clone();
        let n = g.num_vertices();
        let header_bits = header.len() * ceil_log2(n).max(1) as usize;

        let mut path = vec![s];
        let mut cur = s;
        for &waypoint in header.iter().skip(1) {
            while cur != waypoint {
                let table = self.table(cur);
                let Some(port) = table.port_toward(waypoint) else {
                    return Err(RouteFailure::MissingTableEntry { at: cur, waypoint });
                };
                let Some(next) = g.neighbor_at_port(cur, port as usize) else {
                    return Err(RouteFailure::InvalidPort {
                        at: cur,
                        port: port as usize,
                    });
                };
                if faults.blocks_traversal(cur, next) {
                    return Err(RouteFailure::TraversedFault {
                        from: cur,
                        to: next,
                    });
                }
                path.push(next);
                cur = next;
            }
        }
        debug_assert_eq!(cur, t, "header must end at the destination");
        Ok(Delivery {
            hops: path.len() - 1,
            path,
            header,
            header_bits,
        })
    }
}

impl Network {
    /// The paper's fast-recovery scenario: routers learn about failures
    /// lazily. The source computes a header knowing only `known` (a subset
    /// of the real failures `ground_truth`); whenever a forwarding step
    /// would traverse an element of `ground_truth` the current router
    /// *discovers* it (probing the neighbour), adds it to its local
    /// forbidden set, recomputes the header from labels — no global route
    /// maintenance — and forwarding continues. The packet is dropped only
    /// if `t` is genuinely unreachable in `G ∖ ground_truth`.
    ///
    /// Returns the realized walk; `Err` mirrors [`Network::route`]:
    /// `Unreachable` when no surviving path exists (possibly discovered
    /// mid-route), `ForbiddenEndpoint` for failed endpoints, and
    /// [`RouteFailure::NoProgress`] when discovery stops learning new
    /// faults (a scheme-invariant violation, surfaced as a typed error
    /// rather than a panic).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn route_adaptive(
        &self,
        s: NodeId,
        t: NodeId,
        known: &FaultSet,
        ground_truth: &FaultSet,
    ) -> Result<AdaptiveDelivery, RouteFailure> {
        let g = self.oracle.labeling().graph();
        assert!(g.contains(s) && g.contains(t), "endpoint out of range");
        if ground_truth.is_vertex_faulty(s) || ground_truth.is_vertex_faulty(t) {
            return Err(RouteFailure::ForbiddenEndpoint);
        }
        let mut known = known.clone();
        let mut path = vec![s];
        let mut cur = s;
        let mut reroutes = 0usize;
        let mut discovered = 0usize;
        // |F| + 1 header computations suffice: each reroute is triggered by
        // discovering at least one new fault.
        let max_reroutes = ground_truth.len() + 2;
        'replan: loop {
            let answer = self.oracle.query(cur, t, &known);
            if answer.distance.is_infinite() {
                return Err(RouteFailure::Unreachable);
            }
            for &waypoint in answer.path.iter().skip(1) {
                while cur != waypoint {
                    let table = self.table(cur);
                    let Some(port) = table.port_toward(waypoint) else {
                        return Err(RouteFailure::MissingTableEntry { at: cur, waypoint });
                    };
                    let Some(next) = g.neighbor_at_port(cur, port as usize) else {
                        return Err(RouteFailure::InvalidPort {
                            at: cur,
                            port: port as usize,
                        });
                    };
                    if ground_truth.blocks_traversal(cur, next) {
                        // Discover what blocked us and replan from here.
                        let mut learned = false;
                        if ground_truth.is_vertex_faulty(next) && !known.is_vertex_faulty(next) {
                            known.forbid_vertex(next);
                            learned = true;
                        }
                        if ground_truth.is_edge_faulty(cur, next)
                            && !known.is_edge_faulty(cur, next)
                        {
                            known.forbid_edge_unchecked(cur, next);
                            learned = true;
                        }
                        if !learned {
                            // Forwarding into a fault that was already known:
                            // replanning would repeat the same step forever.
                            return Err(RouteFailure::NoProgress { at: cur, reroutes });
                        }
                        discovered += 1;
                        reroutes += 1;
                        if reroutes > max_reroutes {
                            return Err(RouteFailure::NoProgress { at: cur, reroutes });
                        }
                        continue 'replan;
                    }
                    path.push(next);
                    cur = next;
                }
            }
            debug_assert_eq!(cur, t, "header must end at the destination");
            return Ok(AdaptiveDelivery {
                hops: path.len() - 1,
                path,
                reroutes,
                discovered,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::{bfs, generators};

    fn assert_route_ok(net: &Network, g: &Graph, s: u32, t: u32, f: &FaultSet, eps: f64) {
        let s = NodeId::new(s);
        let t = NodeId::new(t);
        let truth = bfs::pair_distance_avoiding(g, s, t, f);
        match net.route(s, t, f) {
            Ok(d) => {
                let td = truth.finite().expect("route succeeded but truth infinite");
                assert_eq!(d.path.first(), Some(&s));
                assert_eq!(d.path.last(), Some(&t));
                // Every hop is a real edge, fault-free.
                for w in d.path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                    assert!(!f.blocks_traversal(w[0], w[1]));
                }
                if td > 0 {
                    let stretch = d.hops as f64 / f64::from(td);
                    assert!(
                        stretch <= 1.0 + eps + 1e-9,
                        "routing stretch {stretch} for {s}->{t}"
                    );
                }
            }
            Err(RouteFailure::Unreachable) => {
                assert!(truth.is_infinite(), "spurious unreachable {s}->{t}");
            }
            Err(e) => panic!("routing invariant violated: {e}"),
        }
    }

    #[test]
    fn cycle_with_fault_routes_around() {
        let g = generators::cycle(20);
        let net = Network::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(2)]);
        for s in 0..20u32 {
            for t in 0..20u32 {
                if s == 2 || t == 2 {
                    continue;
                }
                assert_route_ok(&net, &g, s, t, &f, 1.0);
            }
        }
    }

    #[test]
    fn grid_with_wall_routes_through_gap() {
        let w = 7usize;
        let g = generators::grid2d(w, 7);
        let net = Network::new(&g, 1.0);
        let mut f = FaultSet::empty();
        for y in 1..7u32 {
            f.forbid_vertex(NodeId::new(y * w as u32 + 3));
        }
        for s in [0u32, 21, 42] {
            for t in [6u32, 27, 48] {
                assert_route_ok(&net, &g, s, t, &f, 1.0);
            }
        }
    }

    #[test]
    fn failure_free_routing_is_near_shortest() {
        let g = generators::grid2d(6, 6);
        let net = Network::new(&g, 0.5);
        let f = FaultSet::empty();
        for s in (0..36u32).step_by(5) {
            for t in (0..36u32).step_by(7) {
                assert_route_ok(&net, &g, s, t, &f, 0.5);
            }
        }
    }

    #[test]
    fn edge_fault_routing() {
        let g = generators::cycle(16);
        let net = Network::new(&g, 1.0);
        let f = FaultSet::from_edges(&g, [(NodeId::new(0), NodeId::new(1))]);
        let d = net.route(NodeId::new(0), NodeId::new(1), &f).unwrap();
        assert_eq!(d.hops, 15);
    }

    #[test]
    fn forbidden_endpoint_rejected() {
        let g = generators::path(6);
        let net = Network::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(0)]);
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(3), &f),
            Err(RouteFailure::ForbiddenEndpoint)
        );
    }

    #[test]
    fn unreachable_reported() {
        let g = generators::path(7);
        let net = Network::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(3)]);
        assert_eq!(
            net.route(NodeId::new(0), NodeId::new(6), &f),
            Err(RouteFailure::Unreachable)
        );
    }

    #[test]
    fn self_route_is_trivial() {
        let g = generators::grid2d(4, 4);
        let net = Network::new(&g, 1.0);
        let d = net
            .route(NodeId::new(5), NodeId::new(5), &FaultSet::empty())
            .unwrap();
        assert_eq!(d.hops, 0);
        assert_eq!(d.path, vec![NodeId::new(5)]);
    }

    #[test]
    fn header_bits_accounting() {
        let g = generators::cycle(32);
        let net = Network::new(&g, 1.0);
        let d = net
            .route(NodeId::new(0), NodeId::new(16), &FaultSet::empty())
            .unwrap();
        assert_eq!(d.header_bits, d.header.len() * 5);
    }

    #[test]
    fn adaptive_routing_discovers_and_delivers() {
        let g = generators::cycle(24);
        let net = Network::new(&g, 1.0);
        // The source knows nothing; v2 has actually failed.
        let truth = FaultSet::from_vertices([NodeId::new(2)]);
        let d = net
            .route_adaptive(NodeId::new(0), NodeId::new(5), &FaultSet::empty(), &truth)
            .unwrap();
        assert_eq!(d.path.last(), Some(&NodeId::new(5)));
        assert_eq!(d.reroutes, 1);
        assert_eq!(d.discovered, 1);
        // The walk headed toward v2, bounced at v1, and went the long way:
        // strictly more hops than the omniscient route (21), but delivered.
        assert!(d.hops >= 21);
        for w in d.path.windows(2) {
            assert!(!truth.blocks_traversal(w[0], w[1]));
        }
    }

    #[test]
    fn adaptive_routing_with_full_knowledge_matches_plain() {
        let g = generators::grid2d(6, 6);
        let net = Network::new(&g, 1.0);
        let truth = FaultSet::from_vertices([NodeId::new(14), NodeId::new(21)]);
        let plain = net.route(NodeId::new(0), NodeId::new(35), &truth).unwrap();
        let adaptive = net
            .route_adaptive(NodeId::new(0), NodeId::new(35), &truth, &truth)
            .unwrap();
        assert_eq!(adaptive.reroutes, 0);
        assert_eq!(adaptive.hops, plain.hops);
        assert_eq!(adaptive.path, plain.path);
    }

    #[test]
    fn adaptive_routing_detects_disconnection_late() {
        let g = generators::path(10);
        let net = Network::new(&g, 1.0);
        let truth = FaultSet::from_vertices([NodeId::new(5)]);
        // Unknown wall: the packet walks toward it, discovers it, and only
        // then learns t is unreachable.
        assert_eq!(
            net.route_adaptive(NodeId::new(0), NodeId::new(9), &FaultSet::empty(), &truth),
            Err(RouteFailure::Unreachable)
        );
    }

    #[test]
    fn adaptive_routing_edge_fault_discovery() {
        let g = generators::cycle(16);
        let net = Network::new(&g, 1.0);
        let truth = FaultSet::from_edges(&g, [(NodeId::new(3), NodeId::new(4))]);
        let d = net
            .route_adaptive(NodeId::new(0), NodeId::new(8), &FaultSet::empty(), &truth)
            .unwrap();
        assert_eq!(d.discovered, 1);
        for w in d.path.windows(2) {
            assert!(!truth.is_edge_faulty(w[0], w[1]));
        }
    }

    #[test]
    fn adaptive_forbidden_endpoint() {
        let g = generators::path(5);
        let net = Network::new(&g, 1.0);
        let truth = FaultSet::from_vertices([NodeId::new(4)]);
        assert_eq!(
            net.route_adaptive(NodeId::new(0), NodeId::new(4), &FaultSet::empty(), &truth),
            Err(RouteFailure::ForbiddenEndpoint)
        );
    }

    #[test]
    fn tables_are_memoized() {
        let g = generators::path(10);
        let net = Network::new(&g, 1.0);
        let a = net.table(NodeId::new(4));
        let b = net.table(NodeId::new(4));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn network_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Network>();
    }

    #[test]
    fn concurrent_routing_matches_sequential() {
        let g = generators::grid2d(5, 5);
        let net = Network::new(&g, 1.0);
        let f = FaultSet::from_vertices([NodeId::new(12)]);
        let pairs: Vec<(u32, u32)> = (0..25u32).step_by(3).map(|s| (s, 24 - s)).collect();
        let sequential: Vec<_> = pairs
            .iter()
            .map(|&(s, t)| net.route(NodeId::new(s), NodeId::new(t), &f))
            .collect();
        let concurrent: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(s, t)| {
                    let net = &net;
                    let f = &f;
                    scope.spawn(move || net.route(NodeId::new(s), NodeId::new(t), f))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(concurrent, sequential);
    }
}
