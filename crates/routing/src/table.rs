//! Per-vertex routing tables (Theorem 2.7).
//!
//! The routing extension stores, at each vertex `u` and for every vertex `x`
//! appearing in `u`'s label (i.e. in `∪_i V(H_i(u))`), the *port* of the
//! outgoing edge on a shortest path from `u` toward `x`. Because ports are
//! indices into `u`'s sorted adjacency list they cost `O(log deg)` bits, and
//! the number of entries equals the number of label points, so the routing
//! tables have the same `O(1+ε⁻¹)^{2α} log² n` size bound as the labels.

use std::collections::HashMap;

#[cfg(test)]
use fsdl_graph::bfs::{self, BfsScratch};
use fsdl_graph::{Graph, NodeId};
use fsdl_labels::{Label, Labeling};
use fsdl_nets::ceil_log2;

/// The routing table of one vertex: target → outgoing port on a shortest
/// path.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    owner: NodeId,
    ports: HashMap<NodeId, u32>,
}

impl RoutingTable {
    /// The vertex this table belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The port toward `target`, if `target` is in this table.
    pub fn port_toward(&self, target: NodeId) -> Option<u32> {
        if target == self.owner {
            return None;
        }
        self.ports.get(&target).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` when the table is empty (isolated vertex).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Iterates over `(target, port)` entries in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.ports.iter().map(|(&t, &p)| (t, p))
    }

    /// Table size in bits under the natural encoding: each entry is a
    /// `⌈log n⌉`-bit target plus a `⌈log Δ⌉`-bit port (`Δ` = max degree).
    pub fn bits(&self, n: usize, max_degree: usize) -> usize {
        let entry = ceil_log2(n).max(1) as usize + ceil_log2(max_degree.max(2)).max(1) as usize;
        self.ports.len() * entry
    }

    /// Bit-exact canonical encoding (owner id, entry count, then sorted
    /// delta-encoded target ids with fixed-width ports) — the honest form
    /// of the Theorem 2.7 table-size claim, mirroring the label codec.
    ///
    /// # Panics
    ///
    /// Panics when the owner id or a port exceeds its declared field
    /// width. Tables built by [`RoutingScheme`] for an `n`-vertex graph
    /// of max degree `max_degree` always fit (owner `< n`, ports are
    /// adjacency-list indices `< max_degree`); use
    /// [`RoutingTable::try_encode`] when the table comes from anywhere
    /// else.
    pub fn encode(&self, n: usize, max_degree: usize) -> fsdl_labels::codec::BitWriter {
        self.try_encode(n, max_degree)
            .expect("table fields fit the declared widths")
    }

    /// Fallible form of [`RoutingTable::encode`]: a typed error instead
    /// of a panic when a field does not fit its width.
    ///
    /// # Errors
    ///
    /// Returns a codec error naming the offending field.
    pub fn try_encode(
        &self,
        n: usize,
        max_degree: usize,
    ) -> Result<fsdl_labels::codec::BitWriter, fsdl_labels::codec::CodecError> {
        use fsdl_labels::codec::BitWriter;
        let id_w = ceil_log2(n).max(1);
        let port_w = ceil_log2(max_degree.max(2)).max(1);
        let mut entries: Vec<(NodeId, u32)> = self.ports.iter().map(|(&t, &p)| (t, p)).collect();
        entries.sort_unstable();
        let mut w = BitWriter::new();
        w.write_bits(u64::from(self.owner.raw()), id_w)?;
        w.write_varint(entries.len() as u64);
        let mut prev = 0u64;
        for (k, (target, port)) in entries.iter().enumerate() {
            let id = u64::from(target.raw());
            let delta = if k == 0 { id } else { id - prev };
            prev = id;
            w.write_varint(delta);
            w.write_bits(u64::from(*port), port_w)?;
        }
        Ok(w)
    }

    /// Decodes a table written by [`RoutingTable::encode`]. The input is
    /// untrusted (tables may arrive over the wire or from disk): every
    /// failure mode — a byte slice shorter than the declared bit length,
    /// truncation mid-entry, target ids overflowing or out of range —
    /// surfaces as a typed codec error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns a codec error on truncated or malformed input.
    pub fn decode(
        bytes: &[u8],
        bit_len: usize,
        n: usize,
        max_degree: usize,
    ) -> Result<Self, fsdl_labels::codec::CodecError> {
        use fsdl_labels::codec::{BitReader, CodecError};
        let id_w = ceil_log2(n).max(1);
        let port_w = ceil_log2(max_degree.max(2)).max(1);
        let mut r = BitReader::try_new(bytes, bit_len)?;
        let owner = NodeId::new(r.read_bits(id_w)? as u32);
        let count = r.read_varint()? as usize;
        let mut ports = HashMap::with_capacity(count.min(n));
        let mut prev = 0u64;
        for k in 0..count {
            let delta = r.read_varint()?;
            let id = if k == 0 {
                delta
            } else {
                prev.checked_add(delta).ok_or_else(|| CodecError {
                    bit_offset: bit_len,
                    message: format!("target id overflows at entry {k}"),
                })?
            };
            prev = id;
            if id >= n as u64 {
                return Err(CodecError {
                    bit_offset: bit_len,
                    message: format!("target id {id} out of range for {n} vertices at entry {k}"),
                });
            }
            let port = r.read_bits(port_w)? as u32;
            ports.insert(NodeId::new(id as u32), port);
        }
        Ok(RoutingTable { owner, ports })
    }
}

/// Builds routing tables from a [`Labeling`]: the marker side of the
/// forbidden-set routing scheme.
#[derive(Debug)]
pub struct RoutingScheme<'l> {
    labeling: &'l Labeling,
}

impl<'l> RoutingScheme<'l> {
    /// Wraps a labeling; tables are materialized per vertex on demand (the
    /// same distributed-artifact reasoning as labels).
    pub fn new(labeling: &'l Labeling) -> Self {
        RoutingScheme { labeling }
    }

    /// The underlying labeling.
    pub fn labeling(&self) -> &Labeling {
        self.labeling
    }

    /// Materializes `u`'s routing table: one entry per distinct vertex in
    /// `u`'s label, mapping to the first-hop port on a shortest path.
    ///
    /// Deterministic: the shortest-path tree breaks ties toward the
    /// smallest-id parent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn table_of(&self, u: NodeId) -> RoutingTable {
        let label = self.labeling.label_of(u);
        self.table_for_label(&label)
    }

    /// Materializes the routing table matching an already-materialized
    /// label (avoids rebuilding the label).
    pub fn table_for_label(&self, label: &Label) -> RoutingTable {
        let g = self.labeling.graph();
        let u = label.owner;
        // One BFS from u with smallest-id parents; then walk each target
        // back to u to find the first hop.
        let (dist, parent) = bfs_with_parents(g, u);
        let mut ports = HashMap::new();
        for (_, level) in label.levels_iter() {
            for p in &level.points {
                let x = p.vertex;
                if x == u || ports.contains_key(&x) {
                    continue;
                }
                let Some(first_hop) = first_hop_toward(u, x, &dist, &parent) else {
                    continue;
                };
                let port = g
                    .port_of(u, first_hop)
                    .expect("first hop must be a neighbor");
                ports.insert(x, port as u32);
            }
        }
        RoutingTable { owner: u, ports }
    }
}

/// BFS from `u` returning `(dist, parent)` arrays with deterministic
/// smallest-id parents (`parent[u] = u`; `u32::MAX` for unreachable).
fn bfs_with_parents(g: &Graph, u: NodeId) -> (Vec<u32>, Vec<u32>) {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[u.index()] = 0;
    parent[u.index()] = u.raw();
    queue.push_back(u);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for w in g.neighbor_ids(v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = dv + 1;
                parent[w.index()] = v.raw();
                queue.push_back(w);
            }
        }
    }
    (dist, parent)
}

/// The neighbor of `u` on the (parent-tree) shortest path from `u` to `x`,
/// or `None` when unreachable.
fn first_hop_toward(u: NodeId, x: NodeId, dist: &[u32], parent: &[u32]) -> Option<NodeId> {
    if dist[x.index()] == u32::MAX || x == u {
        return None;
    }
    let mut cur = x;
    loop {
        let p = NodeId::new(parent[cur.index()]);
        if p == u {
            return Some(cur);
        }
        cur = p;
    }
}

/// Scratch-free helper used in tests: exact first hop validation by
/// checking `d(x, hop) = d(x, u) - 1`.
#[cfg(test)]
fn is_valid_first_hop(g: &Graph, u: NodeId, x: NodeId, hop: NodeId) -> bool {
    let mut scratch = BfsScratch::new(g.num_vertices());
    let radius = g.num_vertices() as u32;
    let _ = bfs::ball(g, x, radius, &mut scratch);
    match (scratch.last_dist(u), scratch.last_dist(hop)) {
        (Some(du), Some(dh)) => dh + 1 == du,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_graph::generators;
    use fsdl_labels::SchemeParams;

    fn scheme_for(g: &Graph, eps: f64) -> Labeling {
        Labeling::build(g, SchemeParams::new(eps, g.num_vertices()))
    }

    #[test]
    fn table_covers_label_points() {
        let g = generators::grid2d(6, 6);
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        let u = NodeId::new(14);
        let label = labeling.label_of(u);
        let table = scheme.table_of(u);
        for (_, level) in label.levels_iter() {
            for p in &level.points {
                if p.vertex != u {
                    assert!(
                        table.port_toward(p.vertex).is_some(),
                        "missing entry for {}",
                        p.vertex
                    );
                }
            }
        }
        assert!(table.port_toward(u).is_none());
    }

    #[test]
    fn ports_are_shortest_path_first_hops() {
        let g = generators::grid2d(5, 5);
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        for ur in [0u32, 12, 24] {
            let u = NodeId::new(ur);
            let table = scheme.table_of(u);
            for (target, port) in table.entries() {
                let hop = g.neighbor_at_port(u, port as usize).expect("valid port");
                assert!(
                    is_valid_first_hop(&g, u, target, hop),
                    "bad first hop {hop} from {u} toward {target}"
                );
            }
        }
    }

    #[test]
    fn deterministic_tables() {
        let g = generators::random_geometric(80, 0.16, 4);
        let labeling = scheme_for(&g, 2.0);
        let scheme = RoutingScheme::new(&labeling);
        let a = scheme.table_of(NodeId::new(40));
        let b = scheme.table_of(NodeId::new(40));
        let mut ea: Vec<_> = a.entries().collect();
        let mut eb: Vec<_> = b.entries().collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);
    }

    #[test]
    fn table_codec_roundtrip() {
        let g = generators::grid2d(6, 6);
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        let table = scheme.table_of(NodeId::new(14));
        let max_deg = g.max_degree();
        let w = table.encode(36, max_deg);
        let back = RoutingTable::decode(w.as_bytes(), w.len_bits(), 36, max_deg).unwrap();
        assert_eq!(back.owner(), table.owner());
        let mut a: Vec<_> = table.entries().collect();
        let mut b: Vec<_> = back.entries().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Encoded size is in the same class as the formula accounting.
        assert!(w.len_bits() <= 2 * table.bits(36, max_deg) + 64);
    }

    #[test]
    fn decode_of_short_or_malformed_bytes_is_a_typed_error() {
        let g = generators::grid2d(6, 6);
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        let table = scheme.table_of(NodeId::new(14));
        let max_deg = g.max_degree();
        let w = table.encode(36, max_deg);
        // A byte slice shorter than the declared bit length must surface
        // as a CodecError (the BitReader::try_new path), never a panic.
        let short = &w.as_bytes()[..w.as_bytes().len() / 2];
        assert!(RoutingTable::decode(short, w.len_bits(), 36, max_deg).is_err());
        // Truncated bit lengths mid-stream fail too.
        for cut in [1, 7, w.len_bits() / 3] {
            assert!(RoutingTable::decode(w.as_bytes(), cut, 36, max_deg).is_err());
        }
        // All-ones junk decodes to huge varint deltas: out-of-range target
        // ids must be rejected, not silently truncated into NodeIds.
        let junk = vec![0xFFu8; 64];
        assert!(RoutingTable::decode(&junk, 512, 36, max_deg).is_err());
        assert!(RoutingTable::decode(&[], 0, 36, max_deg).is_err());
    }

    #[test]
    fn try_encode_rejects_out_of_width_fields() {
        let mut ports = HashMap::new();
        ports.insert(NodeId::new(3), 9); // port 9 needs 4 bits
        let t = RoutingTable {
            owner: NodeId::new(40), // needs 6 bits
            ports,
        };
        // n = 16 -> 4 id bits: owner 40 does not fit.
        assert!(t.try_encode(16, 2).is_err());
        // Wide enough ids but a 1-bit port field: port 9 does not fit.
        assert!(t.try_encode(64, 2).is_err());
        // Wide enough everywhere: fine.
        assert!(t.try_encode(64, 16).is_ok());
    }

    #[test]
    fn bits_accounting() {
        let g = generators::path(16);
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        let t = scheme.table_of(NodeId::new(8));
        // n = 16 -> 4 id bits; path max degree 2 -> 1 port bit.
        assert_eq!(t.bits(16, 2), t.len() * 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn single_vertex_table_empty() {
        let g = fsdl_graph::GraphBuilder::new(1).build();
        let labeling = scheme_for(&g, 1.0);
        let scheme = RoutingScheme::new(&labeling);
        let t = scheme.table_of(NodeId::new(0));
        assert!(t.is_empty());
        assert_eq!(t.owner(), NodeId::new(0));
    }
}
