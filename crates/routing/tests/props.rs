//! Property-based tests for the routing scheme on arbitrary connected
//! graphs: delivery correctness, fault avoidance, and the hops == decoder
//! estimate identity.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_routing::{Network, RouteFailure};
use proptest::prelude::*;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n - 1),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..16),
        )
            .prop_map(move |(parents, extra)| {
                let mut b = GraphBuilder::new(n);
                for (i, p) in parents.iter().enumerate().skip(1) {
                    b.add_edge((p % i) as u32, i as u32).expect("in range");
                }
                for (a, c) in extra {
                    if a != c {
                        b.add_edge(a, c).expect("in range");
                    }
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn routed_packets_are_valid_walks(
        g in arb_connected_graph(),
        s_pick in 0u32..20,
        t_pick in 0u32..20,
        fault_picks in proptest::collection::vec(0u32..20, 0..3),
    ) {
        let n = g.num_vertices() as u32;
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let mut faults = FaultSet::empty();
        for f in fault_picks {
            let f = NodeId::new(f % n);
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        let net = Network::new(&g, 1.0);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match net.route(s, t, &faults) {
            Ok(d) => {
                prop_assert_eq!(d.path.first(), Some(&s));
                prop_assert_eq!(d.path.last(), Some(&t));
                for w in d.path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]), "non-edge hop");
                    prop_assert!(!faults.blocks_traversal(w[0], w[1]), "fault traversed");
                }
                // Hop count equals the decoder estimate exactly.
                let est = net.oracle().distance(s, t, &faults);
                prop_assert_eq!(d.hops as u32, est.finite().expect("delivered"));
                // And is within stretch of the truth.
                let td = truth.finite().expect("delivered implies connected");
                if td > 0 {
                    prop_assert!(d.hops as f64 <= 2.0 * f64::from(td) + 1e-9);
                }
            }
            Err(RouteFailure::Unreachable) => prop_assert!(truth.is_infinite()),
            Err(RouteFailure::ForbiddenEndpoint) => {
                prop_assert!(faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t));
            }
            Err(e) => prop_assert!(false, "invariant violated: {e}"),
        }
    }

    #[test]
    fn adaptive_routing_always_consistent(
        g in arb_connected_graph(),
        s_pick in 0u32..20,
        t_pick in 0u32..20,
        fault_picks in proptest::collection::vec(0u32..20, 0..3),
        known_count in 0usize..2,
    ) {
        let n = g.num_vertices() as u32;
        let s = NodeId::new(s_pick % n);
        let t = NodeId::new(t_pick % n);
        let mut truth_faults = FaultSet::empty();
        for f in fault_picks {
            let f = NodeId::new(f % n);
            if f != s && f != t {
                truth_faults.forbid_vertex(f);
            }
        }
        // The source initially knows a prefix of the faults.
        let mut known = FaultSet::empty();
        for v in truth_faults.vertices().take(known_count) {
            known.forbid_vertex(v);
        }
        let net = Network::new(&g, 1.0);
        let reachable =
            bfs::pair_distance_avoiding(&g, s, t, &truth_faults).is_finite();
        match net.route_adaptive(s, t, &known, &truth_faults) {
            Ok(d) => {
                prop_assert!(reachable, "delivered to unreachable target");
                prop_assert_eq!(d.path.last(), Some(&t));
                for w in d.path.windows(2) {
                    prop_assert!(!truth_faults.blocks_traversal(w[0], w[1]));
                }
                prop_assert!(d.discovered <= truth_faults.len());
            }
            Err(RouteFailure::Unreachable) => prop_assert!(!reachable),
            Err(RouteFailure::ForbiddenEndpoint) => {
                prop_assert!(
                    truth_faults.is_vertex_faulty(s) || truth_faults.is_vertex_faulty(t)
                );
            }
            Err(e) => prop_assert!(false, "invariant violated: {e}"),
        }
    }
}
