//! Property-based tests for the routing scheme on arbitrary connected
//! graphs: delivery correctness, fault avoidance, and the hops == decoder
//! estimate identity.

use fsdl_graph::{bfs, FaultSet, Graph, GraphBuilder, NodeId};
use fsdl_routing::{Network, RouteFailure};
use fsdl_testkit::Rng;

fn random_connected_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(2usize..20);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(p as u32, i as u32).expect("in range");
    }
    for _ in 0..rng.gen_range(0..16usize) {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(a, c).expect("in range");
        }
    }
    b.build()
}

#[test]
fn routed_packets_are_valid_walks() {
    fsdl_testkit::check("routed_packets_are_valid_walks", 20, |rng| {
        let g = random_connected_graph(rng);
        let n = g.num_vertices() as u32;
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let mut faults = FaultSet::empty();
        for _ in 0..rng.gen_range(0..3usize) {
            let f = NodeId::new(rng.gen_range(0..n));
            if f != s && f != t {
                faults.forbid_vertex(f);
            }
        }
        let net = Network::new(&g, 1.0);
        let truth = bfs::pair_distance_avoiding(&g, s, t, &faults);
        match net.route(s, t, &faults) {
            Ok(d) => {
                assert_eq!(d.path.first(), Some(&s));
                assert_eq!(d.path.last(), Some(&t));
                for w in d.path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "non-edge hop");
                    assert!(!faults.blocks_traversal(w[0], w[1]), "fault traversed");
                }
                // Hop count equals the decoder estimate exactly.
                let est = net.oracle().distance(s, t, &faults);
                assert_eq!(d.hops as u32, est.finite().expect("delivered"));
                // And is within stretch of the truth.
                let td = truth.finite().expect("delivered implies connected");
                if td > 0 {
                    assert!(d.hops as f64 <= 2.0 * f64::from(td) + 1e-9);
                }
            }
            Err(RouteFailure::Unreachable) => assert!(truth.is_infinite()),
            Err(RouteFailure::ForbiddenEndpoint) => {
                assert!(faults.is_vertex_faulty(s) || faults.is_vertex_faulty(t));
            }
            Err(e) => panic!("invariant violated: {e}"),
        }
    });
}

#[test]
fn adaptive_routing_always_consistent() {
    fsdl_testkit::check("adaptive_routing_always_consistent", 20, |rng| {
        let g = random_connected_graph(rng);
        let n = g.num_vertices() as u32;
        let s = NodeId::new(rng.gen_range(0..n));
        let t = NodeId::new(rng.gen_range(0..n));
        let mut truth_faults = FaultSet::empty();
        for _ in 0..rng.gen_range(0..3usize) {
            let f = NodeId::new(rng.gen_range(0..n));
            if f != s && f != t {
                truth_faults.forbid_vertex(f);
            }
        }
        // The source initially knows a prefix of the faults.
        let known_count = rng.gen_range(0usize..2);
        let mut known = FaultSet::empty();
        for v in truth_faults.vertices().take(known_count) {
            known.forbid_vertex(v);
        }
        let net = Network::new(&g, 1.0);
        let reachable = bfs::pair_distance_avoiding(&g, s, t, &truth_faults).is_finite();
        match net.route_adaptive(s, t, &known, &truth_faults) {
            Ok(d) => {
                assert!(reachable, "delivered to unreachable target");
                assert_eq!(d.path.last(), Some(&t));
                for w in d.path.windows(2) {
                    assert!(!truth_faults.blocks_traversal(w[0], w[1]));
                }
                assert!(d.discovered <= truth_faults.len());
            }
            Err(RouteFailure::Unreachable) => assert!(!reachable),
            Err(RouteFailure::ForbiddenEndpoint) => {
                assert!(truth_faults.is_vertex_faulty(s) || truth_faults.is_vertex_faulty(t));
            }
            Err(e) => panic!("invariant violated: {e}"),
        }
    });
}
