//! A blocking client for the fsdl wire protocol.
//!
//! One [`Client`] owns one connection and a pair of reusable buffers, so
//! a steady request stream allocates only for the decoded replies. The
//! typed helpers ([`Client::query`], [`Client::batch`], ...) send one
//! request and decode one response; a server-side typed error surfaces
//! as [`ClientError::Server`], transport failures as
//! [`ClientError::Io`]/[`ClientError::Wire`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::protocol::{
    self, BatchItem, ErrorReply, FrameError, FrameRead, LabelFetchReply, QueryReply, Request,
    Response, RouteReply, StatsReply, UpdateOp, WireError, WireFaults,
};
use crate::server::Endpoint;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, EOF mid-stream).
    Io(std::io::Error),
    /// The server's bytes did not decode as a response.
    Wire(WireError),
    /// A frame-layer violation (oversized length header).
    Frame(String),
    /// The server answered with a typed error reply.
    Server(ErrorReply),
    /// The server answered with a different response kind than the
    /// request calls for (protocol confusion; names what arrived).
    Unexpected(&'static str),
    /// The server closed the connection at a frame boundary.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "bad response encoding: {e}"),
            ClientError::Frame(msg) => write!(f, "frame error: {msg}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code, e.message),
            ClientError::Unexpected(kind) => {
                write!(f, "unexpected response kind: {kind}")
            }
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            oversized @ FrameError::Oversized { .. } => ClientError::Frame(oversized.to_string()),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to an fsdl server.
pub struct Client {
    stream: Stream,
    encode_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        Ok(Client {
            stream,
            encode_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    /// Connects, retrying for up to `budget` while the server is still
    /// binding (useful right after spawning a server thread/process).
    ///
    /// # Errors
    ///
    /// Returns the final connect error once the budget is spent.
    pub fn connect_with_retry(
        endpoint: &Endpoint,
        budget: Duration,
    ) -> Result<Client, ClientError> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= budget => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one request and decodes one response, whatever its kind.
    ///
    /// # Errors
    ///
    /// Transport and decode failures; a server-side [`Response::Error`]
    /// is returned as `Ok(Response::Error(..))` here — the typed helpers
    /// convert it to [`ClientError::Server`].
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.roundtrip_with(request, protocol::MAX_FRAME)
    }

    /// `roundtrip` with an explicit reply-frame ceiling: label-plane
    /// replies legitimately exceed [`protocol::MAX_FRAME`] (labels are
    /// poly(1/eps, log n) bytes each), so `label_fetch` reads under the
    /// larger [`protocol::MAX_LABEL_FRAME`] cap.
    fn roundtrip_with(&mut self, request: &Request, max_frame: u32) -> Result<Response, ClientError> {
        protocol::send_request(&mut self.stream, request, &mut self.encode_buf)
            .map_err(ClientError::from)?;
        match protocol::read_frame(&mut self.stream, max_frame, &mut self.frame_buf)? {
            FrameRead::Eof => Err(ClientError::Closed),
            FrameRead::Frame => Ok(Response::decode(&self.frame_buf)?),
        }
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        pick: impl FnOnce(Response) -> Result<T, &'static str>,
    ) -> Result<T, ClientError> {
        match self.roundtrip(request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            other => pick(other).map_err(ClientError::Unexpected),
        }
    }

    /// One forbidden-set distance query.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn query(&mut self, s: u32, t: u32, faults: WireFaults) -> Result<QueryReply, ClientError> {
        self.expect(&Request::Query { s, t, faults }, |r| match r {
            Response::Query(q) => Ok(q),
            other => Err(other.kind_name()),
        })
    }

    /// A batch of queries answered in one frame.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn batch(
        &mut self,
        queries: Vec<(u32, u32, WireFaults)>,
    ) -> Result<Vec<BatchItem>, ClientError> {
        self.expect(&Request::Batch(queries), |r| match r {
            Response::Batch(items) => Ok(items),
            other => Err(other.kind_name()),
        })
    }

    /// One routing simulation (static servers only).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn route(&mut self, s: u32, t: u32, faults: WireFaults) -> Result<RouteReply, ClientError> {
        self.expect(&Request::Route { s, t, faults }, |r| match r {
            Response::Route(reply) => Ok(reply),
            other => Err(other.kind_name()),
        })
    }

    /// One durable update (dynamic servers only); returns the active
    /// fault count after the update.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn update(&mut self, op: UpdateOp) -> Result<u32, ClientError> {
        self.expect(&Request::Update(op), |r| match r {
            Response::Update { active_faults } => Ok(active_faults),
            other => Err(other.kind_name()),
        })
    }

    /// A server stats snapshot.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(s) => Ok(s),
            other => Err(other.kind_name()),
        })
    }

    /// Raw encoded labels by global vertex id (shard servers only). An
    /// empty id list is the handshake form: the reply still carries the
    /// shard's generation and decode parameters.
    ///
    /// Servers answer with the longest request prefix under their byte
    /// budget (see [`protocol::LabelFetchReply`]); this helper
    /// transparently re-requests the tail and returns the fully
    /// assembled reply, erroring if the store's identity (generation or
    /// decode parameters) changes between chunks.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn label_fetch(&mut self, vertices: Vec<u32>) -> Result<LabelFetchReply, ClientError> {
        let mut remaining = vertices;
        let mut assembled: Option<LabelFetchReply> = None;
        loop {
            let request = Request::LabelFetch {
                vertices: remaining.clone(),
            };
            let reply = match self.roundtrip_with(&request, protocol::MAX_LABEL_FRAME)? {
                Response::Error(e) => return Err(ClientError::Server(e)),
                Response::LabelFetch(reply) => reply,
                other => return Err(ClientError::Unexpected(other.kind_name())),
            };
            let served = reply.labels.len();
            let is_prefix = served <= remaining.len()
                && reply
                    .labels
                    .iter()
                    .zip(&remaining)
                    .all(|(lb, &v)| lb.vertex == v);
            if !is_prefix || (served == 0 && !remaining.is_empty()) {
                return Err(ClientError::Unexpected(
                    "label-fetch reply was not a prefix of the request",
                ));
            }
            match assembled.as_mut() {
                None => assembled = Some(reply),
                Some(acc) => {
                    let same_identity = reply.generation == acc.generation
                        && reply.epsilon_bits == acc.epsilon_bits
                        && reply.c == acc.c
                        && reply.vertices == acc.vertices;
                    if !same_identity {
                        return Err(ClientError::Unexpected(
                            "label plane changed identity between fetch chunks",
                        ));
                    }
                    acc.labels.extend(reply.labels);
                }
            }
            remaining.drain(..served);
            if remaining.is_empty() {
                return Ok(assembled.take().expect("assembled reply"));
            }
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Shutdown, |r| match r {
            Response::Shutdown => Ok(()),
            other => Err(other.kind_name()),
        })
    }
}
