//! Network serving layer for the forbidden-set distance oracle.
//!
//! The paper's labels are *self-contained*: answering `δ(s, t, F)` needs
//! only the labels of `s`, `t`, and the faulted elements. That makes the
//! oracle an ideal long-running service — the whole label arena is
//! immutable shared state, and every query touches a bounded, local
//! slice of it. This crate turns the in-process oracle into that
//! service:
//!
//! - [`protocol`] — a small length-prefixed binary protocol
//!   (`query` / `batch` / `route` / `update` / `stats` / `shutdown`),
//!   little-endian, distances on the wire as raw `u32` with
//!   `u32::MAX` = unreachable so answers round-trip bit-identically.
//!   Every decode path is bounds-checked and panic-free on arbitrary
//!   bytes; violations come back as typed [`protocol::ErrorReply`]
//!   frames.
//! - [`server`] — [`server::Server`]: one readiness-driven event loop
//!   (raw `epoll` via `fsdl-reactor`, `poll(2)` off-Linux) owning every
//!   nonblocking socket and its frame-reassembly/write buffers, so idle
//!   and slow connections cost nothing; only *complete* frames reach
//!   the fixed worker pool (sized by
//!   [`fsdl_nets::parallel::background_workers`], never below one
//!   worker), each worker reusing one
//!   [`fsdl_labels::DecodeScratch`] so the PR-3 zero-allocation decode
//!   fast path survives the network hop. Serves a static
//!   [`fsdl_routing::Network`] or a durable
//!   [`fsdl_labels::DynamicOracle`]; graceful shutdown drains in-flight
//!   requests and any background rebuild, and slow-loris clients are
//!   cut by a per-connection frame deadline.
//! - [`client`] — [`client::Client`]: a blocking connection with typed
//!   helpers, used by the CLI, the load generator, and the tests.
//!
//! ```no_run
//! use fsdl_server::{Client, Endpoint, ServeEngine, Server, ServerConfig};
//! use fsdl_routing::Network;
//!
//! let g = fsdl_graph::generators::grid2d(8, 8);
//! let oracle = fsdl_labels::ForbiddenSetOracle::new(&g, 0.5);
//! let server = Server::bind(
//!     &Endpoint::Tcp("127.0.0.1:0".into()),
//!     ServeEngine::from_network(Network::from_oracle(oracle)),
//!     ServerConfig::default(),
//! )?;
//! let endpoint = server.local_endpoint()?;
//! let handle = std::thread::spawn(move || server.run());
//! let mut client = Client::connect(&endpoint)?;
//! let reply = client.query(0, 63, fsdl_server::WireFaults::default())?;
//! println!("distance {}", reply.distance);
//! client.shutdown()?;
//! let report = handle.join().unwrap();
//! assert_eq!(report.protocol_errors, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod router;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    BatchItem, ErrorCode, ErrorReply, FrameAssembler, FrameStep, LabelBytes, LabelFetchReply,
    QueryReply, Request, Response, RouteReply, StatsReply, UpdateOp, WireError, WireFaults,
    WriteBuffer, MAX_BATCH, MAX_FRAME, MAX_LABEL_FETCH,
};
pub use router::{Router, RouterConfig, RouterError, RouterReport};
pub use server::{Endpoint, ServeEngine, ServeReport, Server, ServerConfig, ShutdownHandle};
