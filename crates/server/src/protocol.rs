//! The fsdl wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame   := len:u32le  payload[len]
//! request := opcode:u8  body
//! reply   := status:u8  body        (status 0 = ok, 1 = error)
//! ```
//!
//! All integers are little-endian. Distances ride as raw `u32` with
//! `u32::MAX` meaning [`Dist::INFINITE`] (exactly the in-memory sentinel,
//! so a wire round trip is bit-identical). The protocol is deliberately
//! positional and fixed-width — no self-describing tags — because the
//! labels are self-contained and a query needs nothing but vertex ids.
//!
//! Decoding is total: any byte string either parses into a typed message
//! or returns a [`WireError`]; it never panics and never reads past the
//! frame (`decode` rejects trailing bytes, so a bit flip in a length
//! field cannot silently desynchronize a connection).
//!
//! ## Saturation sentinel
//!
//! Several reply fields narrow in-memory `usize`/`u64` counters to `u32`
//! on the wire (`sketch_vertices`, `sketch_edges`, `hops`, `header_bits`,
//! `active_faults`). A value that does not fit is sent as **`u32::MAX`**,
//! the saturation sentinel — a reader seeing `u32::MAX` in one of these
//! fields must treat it as "at least 2³²−1", never as an exact count.
//! (For `QueryReply::distance` the same bit pattern is the infinity
//! sentinel, which is consistent: an unrepresentably large distance *is*
//! effectively infinite.) Values below the sentinel are always exact.
//!
//! ## Label fetch
//!
//! The `label-fetch` op (0x07) is the shard-serving primitive: the router
//! asks a shard for the **raw encoded label bytes** of a set of global
//! vertex ids, and decodes them itself against the global id width. The
//! reply carries the shard's store generation plus the decode parameters
//! `(epsilon_bits, c, n)` so a router can validate shard agreement and
//! reconstruct `SchemeParams` without filesystem access:
//!
//! ```text
//! request  := 0x07 count:u32 vertex:u32 ...
//! reply    := 0x00 0x07 generation:u64 epsilon_bits:u64 c:u32 n:u64
//!             count:u32 (vertex:u32 bit_len:u32 bytes[ceil(bit_len/8)]) ...
//! ```

use std::io::{Read, Write};

use fsdl_graph::{Dist, FaultSet, NodeId};

/// Hard ceiling on a frame's payload length. A frame claiming more than
/// this is a protocol error: the connection's framing can no longer be
/// trusted (the length itself may be corrupt), so servers answer with a
/// typed error and close that connection only.
pub const MAX_FRAME: u32 = 1 << 20;

/// Ceiling on the number of queries in one batch frame.
pub const MAX_BATCH: u32 = 4096;

/// Ceiling on per-query fault-set size on the wire (vertices and edges
/// each). Far above any plausible `|F|`; exists so a corrupt count can't
/// make the decoder loop for gigabytes.
pub const MAX_WIRE_FAULTS: u16 = u16::MAX;

/// Ceiling on vertex ids in one label-fetch frame. A scatter-gather
/// round fetches at most `2 + 2·|F|` labels per query, so this bounds a
/// router's per-shard coalescing, not a client-visible limit.
pub const MAX_LABEL_FETCH: u32 = 4096;

/// Frame ceiling for *label-plane replies* (label-fetch responses read
/// by routers and blocking clients). Encoded labels are `poly(1/eps,
/// log n)` bytes and legitimately reach hundreds of kilobytes each on
/// dense parameter settings, so a multi-label reply cannot live under
/// [`MAX_FRAME`]; id counts bound nothing when the per-id payload is
/// unbounded. Requests and all non-label replies stay under
/// [`MAX_FRAME`] — this larger cap applies only where the reader
/// expects label bytes, and still bounds what a corrupt length field
/// can make a reader allocate.
pub const MAX_LABEL_FRAME: u32 = 1 << 26;

/// Soft byte budget on the encoded label bytes packed into one
/// label-fetch reply. Servers answer with the longest *prefix* of the
/// requested ids whose labels fit the budget — always at least one, so
/// a fetch makes progress even when a single label exceeds the budget
/// (one label must still fit [`MAX_LABEL_FRAME`], which is ~64x this).
/// Readers that receive a short reply re-request the tail; see
/// [`LabelFetchReply`].
pub const LABEL_FETCH_BYTE_BUDGET: usize = 1 << 20;

/// Request opcodes (first payload byte).
mod op {
    pub const QUERY: u8 = 0x01;
    pub const BATCH: u8 = 0x02;
    pub const ROUTE: u8 = 0x03;
    pub const UPDATE: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;
    pub const LABEL_FETCH: u8 = 0x07;
}

/// Reply status bytes.
mod status {
    pub const OK: u8 = 0x00;
    pub const ERR: u8 = 0x01;
}

/// Typed error codes carried by error replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The payload did not parse (truncated body, trailing bytes, bad
    /// counts, bad UTF-8).
    Malformed = 1,
    /// The frame length exceeded [`MAX_FRAME`].
    Oversized = 2,
    /// Unknown opcode byte.
    UnknownOpcode = 3,
    /// The request parsed but names out-of-range vertices or non-edges.
    BadRequest = 4,
    /// The operation is not available in the server's mode (e.g. `update`
    /// against a static oracle).
    UnsupportedInMode = 5,
    /// A dynamic update was rejected by the oracle (typed
    /// `DynamicError`, relayed).
    UpdateRejected = 6,
    /// The server failed internally (never expected; present so a bug
    /// surfaces as a reply, not a dropped connection).
    Internal = 7,
    /// The connection started a frame but did not finish it within the
    /// server's frame-completion deadline (slow-loris protection); the
    /// server sends this and closes the connection.
    DeadlineExceeded = 8,
    /// A backend this request depends on is down (a router answering for
    /// an unreachable shard). The request may succeed on retry once the
    /// backend returns; the client connection stays open.
    Unavailable = 9,
}

impl ErrorCode {
    fn from_u8(raw: u8) -> Option<ErrorCode> {
        Some(match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Oversized,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::UnsupportedInMode,
            6 => ErrorCode::UpdateRejected,
            7 => ErrorCode::Internal,
            8 => ErrorCode::DeadlineExceeded,
            9 => ErrorCode::Unavailable,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownOpcode => "unknown-opcode",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnsupportedInMode => "unsupported-in-mode",
            ErrorCode::UpdateRejected => "update-rejected",
            ErrorCode::Internal => "internal",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Unavailable => "unavailable",
        };
        f.write_str(name)
    }
}

/// Decode failures. Every variant is a *typed* rejection: the decoder
/// consumed untrusted bytes and stopped, nothing panicked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field named here.
    Truncated(&'static str),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// Unknown request opcode.
    UnknownOpcode(u8),
    /// Unknown reply status byte.
    UnknownStatus(u8),
    /// A count field exceeded its ceiling.
    TooMany {
        /// What was being counted.
        what: &'static str,
        /// The claimed count.
        count: u64,
        /// The ceiling it exceeded.
        max: u64,
    },
    /// An embedded string was not UTF-8.
    BadUtf8,
    /// Unknown update-kind or route-status discriminant.
    BadDiscriminant(&'static str, u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated(field) => write!(f, "payload truncated at {field}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            WireError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::UnknownStatus(b) => write!(f, "unknown status {b:#04x}"),
            WireError::TooMany { what, count, max } => {
                write!(f, "{what} count {count} exceeds limit {max}")
            }
            WireError::BadUtf8 => write!(f, "embedded string is not UTF-8"),
            WireError::BadDiscriminant(what, b) => {
                write!(f, "unknown {what} discriminant {b:#04x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// The error code a server should answer with for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
            _ => ErrorCode::Malformed,
        }
    }
}

/// A forbidden set as it rides the wire: raw vertex ids and edge pairs.
/// Conversion to a validated [`FaultSet`] happens server-side against the
/// actual graph (out-of-range ids become a typed [`ErrorCode::BadRequest`]
/// reply, never a panic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireFaults {
    /// Forbidden vertex ids.
    pub vertices: Vec<u32>,
    /// Forbidden edges as unordered id pairs.
    pub edges: Vec<(u32, u32)>,
}

impl WireFaults {
    /// An empty forbidden set.
    pub fn empty() -> Self {
        WireFaults::default()
    }

    /// Builds wire faults from an in-memory [`FaultSet`].
    pub fn from_fault_set(f: &FaultSet) -> Self {
        WireFaults {
            vertices: f.vertices().map(NodeId::raw).collect(),
            edges: f.edges().map(|e| (e.lo().raw(), e.hi().raw())).collect(),
        }
    }

    /// Whether no fault is named.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Converts to the in-memory representation without validation (the
    /// oracle's `try_*` entry points do the validating).
    pub fn to_fault_set(&self) -> FaultSet {
        let mut f = FaultSet::from_vertices(self.vertices.iter().copied().map(NodeId::new));
        for &(a, b) in &self.edges {
            if a != b {
                f.forbid_edge_unchecked(NodeId::new(a), NodeId::new(b));
            }
        }
        f
    }
}

/// A dynamic-oracle update operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Delete a vertex.
    DeleteVertex(u32),
    /// Delete an edge.
    DeleteEdge(u32, u32),
    /// Restore a previously deleted vertex.
    RestoreVertex(u32),
    /// Restore a previously deleted edge.
    RestoreEdge(u32, u32),
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One distance query with a per-query forbidden set.
    Query {
        /// Source vertex id.
        s: u32,
        /// Target vertex id.
        t: u32,
        /// Per-query forbidden set.
        faults: WireFaults,
    },
    /// Many queries answered in one frame (server fans them over the
    /// same decode path as `ForbiddenSetOracle::query_batch`).
    Batch(Vec<(u32, u32, WireFaults)>),
    /// Compute a route (static mode only).
    Route {
        /// Source vertex id.
        s: u32,
        /// Target vertex id.
        t: u32,
        /// Forbidden set known to the source.
        faults: WireFaults,
    },
    /// A durable dynamic update (dynamic mode only).
    Update(UpdateOp),
    /// Server counters and identity.
    Stats,
    /// Graceful shutdown: drain in-flight requests, flush, exit.
    Shutdown,
    /// Raw encoded labels by global vertex id (shard mode; the router's
    /// scatter-gather primitive). An empty id list is a valid handshake:
    /// the reply still carries generation and decode parameters.
    LabelFetch {
        /// Global vertex ids to fetch, at most [`MAX_LABEL_FETCH`].
        vertices: Vec<u32>,
    },
}

/// The reply to a [`Request::Query`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryReply {
    /// `δ(s, t, F)` as raw bits (`u32::MAX` = infinite).
    pub distance: u32,
    /// Sketch-graph vertex count (0 in dynamic mode).
    pub sketch_vertices: u32,
    /// Admitted sketch edge count (0 in dynamic mode).
    pub sketch_edges: u32,
    /// Witness path (empty when unreachable or in dynamic mode).
    pub path: Vec<u32>,
}

impl QueryReply {
    /// The distance as a [`Dist`].
    pub fn dist(&self) -> Dist {
        if self.distance == u32::MAX {
            Dist::INFINITE
        } else {
            Dist::new(self.distance)
        }
    }
}

/// One element of a batch reply (no witness path: batches are the
/// throughput path, and the distance plus sketch sizes are the
/// bit-identity witness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchItem {
    /// `δ(s, t, F)` as raw bits (`u32::MAX` = infinite).
    pub distance: u32,
    /// Sketch-graph vertex count.
    pub sketch_vertices: u32,
    /// Admitted sketch edge count.
    pub sketch_edges: u32,
}

/// The reply to a [`Request::Route`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteReply {
    /// The packet was delivered.
    Delivered {
        /// Edges traversed.
        hops: u32,
        /// Header size in bits.
        header_bits: u32,
        /// Every vertex visited, `s` to `t` inclusive.
        path: Vec<u32>,
    },
    /// Routing failed (relayed `RouteFailure` text).
    Failed(String),
}

/// The reply to a [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Vertices in the served graph (the query id space).
    pub vertices: u64,
    /// 0 = static oracle, 1 = dynamic oracle.
    pub dynamic: u8,
    /// Active faults (dynamic mode; 0 in static mode).
    pub active_faults: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Single queries answered.
    pub queries: u64,
    /// Queries answered inside batch frames.
    pub batch_queries: u64,
    /// Routes computed.
    pub routes: u64,
    /// Updates applied.
    pub updates: u64,
    /// Protocol errors answered (malformed frames, bad requests).
    pub protocol_errors: u64,
    /// Connections closed for stalling mid-frame past the server's
    /// frame-completion deadline (slow-loris protection).
    pub deadline_closes: u64,
    /// Label-fetch requests answered (shard mode; 0 elsewhere).
    pub label_fetches: u64,
}

/// One raw encoded label in a label-fetch reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelBytes {
    /// The global vertex id this label belongs to.
    pub vertex: u32,
    /// Payload length in bits (the codec needs the exact bit count; the
    /// byte count on the wire is `bit_len.div_ceil(8)`).
    pub bit_len: u32,
    /// The encoded label, exactly as the store persists it.
    pub bytes: Vec<u8>,
}

/// The reply to a [`Request::LabelFetch`]: raw labels plus everything a
/// router needs to decode them and detect shard disagreement.
///
/// The reply may be **short**: servers pack labels under
/// [`LABEL_FETCH_BYTE_BUDGET`] and answer with the longest prefix of
/// the requested ids that fits (never fewer than one for a non-empty
/// request). `labels` is always a prefix of the request, in request
/// order; a reader seeing `labels.len()` below its request length must
/// re-request the remaining suffix. A reply that is not a prefix —
/// wrong ids, wrong order, or more labels than asked — is a protocol
/// desynchronization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelFetchReply {
    /// The store generation these bytes were served from.
    pub generation: u64,
    /// `f64::to_bits` of the scheme's epsilon (bit-exact on the wire).
    pub epsilon_bits: u64,
    /// The scheme's `c` parameter.
    pub c: u32,
    /// The *global* vertex count — the id width labels decode against,
    /// not this shard's label count.
    pub vertices: u64,
    /// The fetched labels, in request order.
    pub labels: Vec<LabelBytes>,
}

/// An error reply: the typed code plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// The typed error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// A server reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query(QueryReply),
    /// Answer to [`Request::Batch`].
    Batch(Vec<BatchItem>),
    /// Answer to [`Request::Route`].
    Route(RouteReply),
    /// Answer to [`Request::Update`]: active faults after the update.
    Update {
        /// Faults active after the update.
        active_faults: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Acknowledgement of [`Request::Shutdown`] (sent before the server
    /// begins draining).
    Shutdown,
    /// Answer to [`Request::LabelFetch`].
    LabelFetch(LabelFetchReply),
    /// A typed error.
    Error(ErrorReply),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_faults(buf: &mut Vec<u8>, f: &WireFaults) {
    debug_assert!(f.vertices.len() <= usize::from(MAX_WIRE_FAULTS));
    debug_assert!(f.edges.len() <= usize::from(MAX_WIRE_FAULTS));
    put_u16(buf, f.vertices.len() as u16);
    put_u16(buf, f.edges.len() as u16);
    for &v in &f.vertices {
        put_u32(buf, v);
    }
    for &(a, b) in &f.edges {
        put_u32(buf, a);
        put_u32(buf, b);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    put_u16(buf, len as u16);
    buf.extend_from_slice(&bytes[..len]);
}

fn put_ids(buf: &mut Vec<u8>, ids: &[u32]) {
    put_u32(buf, ids.len() as u32);
    for &v in ids {
        put_u32(buf, v);
    }
}

impl Request {
    /// Appends this request's payload bytes to `buf` (no frame header).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Query { s, t, faults } => {
                buf.push(op::QUERY);
                put_u32(buf, *s);
                put_u32(buf, *t);
                put_faults(buf, faults);
            }
            Request::Batch(queries) => {
                buf.push(op::BATCH);
                put_u32(buf, queries.len() as u32);
                for (s, t, faults) in queries {
                    put_u32(buf, *s);
                    put_u32(buf, *t);
                    put_faults(buf, faults);
                }
            }
            Request::Route { s, t, faults } => {
                buf.push(op::ROUTE);
                put_u32(buf, *s);
                put_u32(buf, *t);
                put_faults(buf, faults);
            }
            Request::Update(update) => {
                buf.push(op::UPDATE);
                let (kind, a, b) = match *update {
                    UpdateOp::DeleteVertex(v) => (0u8, v, 0),
                    UpdateOp::DeleteEdge(a, b) => (1, a, b),
                    UpdateOp::RestoreVertex(v) => (2, v, 0),
                    UpdateOp::RestoreEdge(a, b) => (3, a, b),
                };
                buf.push(kind);
                put_u32(buf, a);
                put_u32(buf, b);
            }
            Request::Stats => buf.push(op::STATS),
            Request::Shutdown => buf.push(op::SHUTDOWN),
            Request::LabelFetch { vertices } => {
                buf.push(op::LABEL_FETCH);
                put_ids(buf, vertices);
            }
        }
    }

    /// Decodes a request payload (one whole frame, header stripped).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformation; never panics.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let opcode = r.u8("opcode")?;
        let req = match opcode {
            op::QUERY => {
                let s = r.u32("query.s")?;
                let t = r.u32("query.t")?;
                let faults = r.faults()?;
                Request::Query { s, t, faults }
            }
            op::BATCH => {
                let count = r.u32("batch.count")?;
                if count > MAX_BATCH {
                    return Err(WireError::TooMany {
                        what: "batch queries",
                        count: u64::from(count),
                        max: u64::from(MAX_BATCH),
                    });
                }
                let mut queries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let s = r.u32("batch.s")?;
                    let t = r.u32("batch.t")?;
                    let faults = r.faults()?;
                    queries.push((s, t, faults));
                }
                Request::Batch(queries)
            }
            op::ROUTE => {
                let s = r.u32("route.s")?;
                let t = r.u32("route.t")?;
                let faults = r.faults()?;
                Request::Route { s, t, faults }
            }
            op::UPDATE => {
                let kind = r.u8("update.kind")?;
                let a = r.u32("update.a")?;
                let b = r.u32("update.b")?;
                let update = match kind {
                    0 => UpdateOp::DeleteVertex(a),
                    1 => UpdateOp::DeleteEdge(a, b),
                    2 => UpdateOp::RestoreVertex(a),
                    3 => UpdateOp::RestoreEdge(a, b),
                    other => return Err(WireError::BadDiscriminant("update kind", other)),
                };
                Request::Update(update)
            }
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            op::LABEL_FETCH => {
                let vertices = r.ids("label_fetch.vertices")?;
                if vertices.len() > MAX_LABEL_FETCH as usize {
                    return Err(WireError::TooMany {
                        what: "label-fetch vertices",
                        count: vertices.len() as u64,
                        max: u64::from(MAX_LABEL_FETCH),
                    });
                }
                Request::LabelFetch { vertices }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// The reply kind as a static name (for "wrong response kind"
    /// diagnostics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Response::Query(_) => "query",
            Response::Batch(_) => "batch",
            Response::Route(_) => "route",
            Response::Update { .. } => "update",
            Response::Stats(_) => "stats",
            Response::Shutdown => "shutdown",
            Response::LabelFetch(_) => "label-fetch",
            Response::Error(_) => "error",
        }
    }

    /// Appends this reply's payload bytes to `buf` (no frame header).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Query(q) => {
                buf.push(status::OK);
                buf.push(op::QUERY);
                put_u32(buf, q.distance);
                put_u32(buf, q.sketch_vertices);
                put_u32(buf, q.sketch_edges);
                put_ids(buf, &q.path);
            }
            Response::Batch(items) => {
                buf.push(status::OK);
                buf.push(op::BATCH);
                put_u32(buf, items.len() as u32);
                for item in items {
                    put_u32(buf, item.distance);
                    put_u32(buf, item.sketch_vertices);
                    put_u32(buf, item.sketch_edges);
                }
            }
            Response::Route(route) => {
                buf.push(status::OK);
                buf.push(op::ROUTE);
                match route {
                    RouteReply::Delivered {
                        hops,
                        header_bits,
                        path,
                    } => {
                        buf.push(1);
                        put_u32(buf, *hops);
                        put_u32(buf, *header_bits);
                        put_ids(buf, path);
                    }
                    RouteReply::Failed(reason) => {
                        buf.push(0);
                        put_str(buf, reason);
                    }
                }
            }
            Response::Update { active_faults } => {
                buf.push(status::OK);
                buf.push(op::UPDATE);
                put_u32(buf, *active_faults);
            }
            Response::Stats(s) => {
                buf.push(status::OK);
                buf.push(op::STATS);
                put_u64(buf, s.vertices);
                buf.push(s.dynamic);
                put_u64(buf, s.active_faults);
                put_u64(buf, s.connections);
                put_u64(buf, s.queries);
                put_u64(buf, s.batch_queries);
                put_u64(buf, s.routes);
                put_u64(buf, s.updates);
                put_u64(buf, s.protocol_errors);
                put_u64(buf, s.deadline_closes);
                put_u64(buf, s.label_fetches);
            }
            Response::Shutdown => {
                buf.push(status::OK);
                buf.push(op::SHUTDOWN);
            }
            Response::LabelFetch(reply) => {
                buf.push(status::OK);
                buf.push(op::LABEL_FETCH);
                put_u64(buf, reply.generation);
                put_u64(buf, reply.epsilon_bits);
                put_u32(buf, reply.c);
                put_u64(buf, reply.vertices);
                put_u32(buf, reply.labels.len() as u32);
                for label in &reply.labels {
                    debug_assert_eq!(
                        label.bytes.len(),
                        (label.bit_len as usize).div_ceil(8),
                        "label byte count must match its bit length"
                    );
                    put_u32(buf, label.vertex);
                    put_u32(buf, label.bit_len);
                    buf.extend_from_slice(&label.bytes);
                }
            }
            Response::Error(e) => {
                buf.push(status::ERR);
                buf.push(e.code as u8);
                put_str(buf, &e.message);
            }
        }
    }

    /// Decodes a reply payload (one whole frame, header stripped).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformation; never panics.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let st = r.u8("status")?;
        let resp = match st {
            status::OK => {
                let opcode = r.u8("reply opcode")?;
                match opcode {
                    op::QUERY => {
                        let distance = r.u32("reply.distance")?;
                        let sketch_vertices = r.u32("reply.sketch_vertices")?;
                        let sketch_edges = r.u32("reply.sketch_edges")?;
                        let path = r.ids("reply.path")?;
                        Response::Query(QueryReply {
                            distance,
                            sketch_vertices,
                            sketch_edges,
                            path,
                        })
                    }
                    op::BATCH => {
                        let count = r.u32("reply.batch.count")?;
                        if count > MAX_BATCH {
                            return Err(WireError::TooMany {
                                what: "batch replies",
                                count: u64::from(count),
                                max: u64::from(MAX_BATCH),
                            });
                        }
                        let mut items = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            items.push(BatchItem {
                                distance: r.u32("reply.batch.distance")?,
                                sketch_vertices: r.u32("reply.batch.sv")?,
                                sketch_edges: r.u32("reply.batch.se")?,
                            });
                        }
                        Response::Batch(items)
                    }
                    op::ROUTE => match r.u8("reply.route.delivered")? {
                        1 => Response::Route(RouteReply::Delivered {
                            hops: r.u32("reply.route.hops")?,
                            header_bits: r.u32("reply.route.header_bits")?,
                            path: r.ids("reply.route.path")?,
                        }),
                        0 => Response::Route(RouteReply::Failed(r.str("reply.route.reason")?)),
                        other => {
                            return Err(WireError::BadDiscriminant("route status", other));
                        }
                    },
                    op::UPDATE => Response::Update {
                        active_faults: r.u32("reply.update.active_faults")?,
                    },
                    op::STATS => Response::Stats(StatsReply {
                        vertices: r.u64("reply.stats.vertices")?,
                        dynamic: r.u8("reply.stats.dynamic")?,
                        active_faults: r.u64("reply.stats.active_faults")?,
                        connections: r.u64("reply.stats.connections")?,
                        queries: r.u64("reply.stats.queries")?,
                        batch_queries: r.u64("reply.stats.batch_queries")?,
                        routes: r.u64("reply.stats.routes")?,
                        updates: r.u64("reply.stats.updates")?,
                        protocol_errors: r.u64("reply.stats.protocol_errors")?,
                        deadline_closes: r.u64("reply.stats.deadline_closes")?,
                        label_fetches: r.u64("reply.stats.label_fetches")?,
                    }),
                    op::SHUTDOWN => Response::Shutdown,
                    op::LABEL_FETCH => {
                        let generation = r.u64("reply.fetch.generation")?;
                        let epsilon_bits = r.u64("reply.fetch.epsilon_bits")?;
                        let c = r.u32("reply.fetch.c")?;
                        let vertices = r.u64("reply.fetch.vertices")?;
                        let count = r.u32("reply.fetch.count")?;
                        if count > MAX_LABEL_FETCH {
                            return Err(WireError::TooMany {
                                what: "label-fetch labels",
                                count: u64::from(count),
                                max: u64::from(MAX_LABEL_FETCH),
                            });
                        }
                        let mut labels = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            let vertex = r.u32("reply.fetch.vertex")?;
                            let bit_len = r.u32("reply.fetch.bit_len")?;
                            // take() bounds the byte count against the
                            // frame, so a corrupt bit_len is Truncated,
                            // not an allocation.
                            let bytes = r
                                .take((bit_len as usize).div_ceil(8), "reply.fetch.bytes")?
                                .to_vec();
                            labels.push(LabelBytes {
                                vertex,
                                bit_len,
                                bytes,
                            });
                        }
                        Response::LabelFetch(LabelFetchReply {
                            generation,
                            epsilon_bits,
                            c,
                            vertices,
                            labels,
                        })
                    }
                    other => return Err(WireError::UnknownOpcode(other)),
                }
            }
            status::ERR => {
                let raw = r.u8("error code")?;
                let code =
                    ErrorCode::from_u8(raw).ok_or(WireError::BadDiscriminant("error code", raw))?;
                let message = r.str("error message")?;
                Response::Error(ErrorReply { code, message })
            }
            other => return Err(WireError::UnknownStatus(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// A bounds-checked positional reader over one frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated(field))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, field)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn faults(&mut self) -> Result<WireFaults, WireError> {
        let nv = self.u16("faults.vertex_count")?;
        let ne = self.u16("faults.edge_count")?;
        let mut vertices = Vec::with_capacity(usize::from(nv));
        for _ in 0..nv {
            vertices.push(self.u32("faults.vertex")?);
        }
        let mut edges = Vec::with_capacity(usize::from(ne));
        for _ in 0..ne {
            let a = self.u32("faults.edge.a")?;
            let b = self.u32("faults.edge.b")?;
            edges.push((a, b));
        }
        Ok(WireFaults { vertices, edges })
    }

    fn ids(&mut self, field: &'static str) -> Result<Vec<u32>, WireError> {
        let count = self.u32(field)?;
        // A path can never exceed the frame it rides in; reject early so a
        // corrupt count cannot trigger a giant allocation.
        let remaining = (self.bytes.len() - self.pos) / 4;
        if count as usize > remaining {
            return Err(WireError::Truncated(field));
        }
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            ids.push(self.u32(field)?);
        }
        Ok(ids)
    }

    fn str(&mut self, field: &'static str) -> Result<String, WireError> {
        let len = self.u16(field)?;
        let bytes = self.take(usize::from(len), field)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.bytes.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Frame-layer failures (distinct from payload-level [`WireError`]s:
/// after a frame error the stream position is unreliable and the
/// connection should close; after a payload error the next frame is still
/// well delimited).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The header announced a payload larger than `max`.
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The enforced ceiling.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// What [`read_frame`] observed.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame was read into the buffer.
    Frame,
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "payload exceeds u32 length",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf` (resized to the payload length). Blocking:
/// assumes the stream has no read timeout. A clean EOF *before any header
/// byte* is [`FrameRead::Eof`]; EOF mid-frame is an
/// [`std::io::ErrorKind::UnexpectedEof`] I/O error.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the header claims more than `max`
/// bytes, [`FrameError::Io`] on stream failures.
pub fn read_frame<R: Read>(
    r: &mut R,
    max: u32,
    buf: &mut Vec<u8>,
) -> Result<FrameRead, FrameError> {
    let mut header = [0u8; 4];
    // First header byte decides EOF-at-boundary vs truncated frame.
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(FrameRead::Eof);
                }
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid-header",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(FrameRead::Frame)
}

/// Encodes `req` and writes it as one frame.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn send_request<W: Write>(w: &mut W, req: &Request, buf: &mut Vec<u8>) -> std::io::Result<()> {
    buf.clear();
    req.encode(buf);
    write_frame(w, buf)
}

/// Encodes `resp` and writes it as one frame.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn send_response<W: Write>(
    w: &mut W,
    resp: &Response,
    buf: &mut Vec<u8>,
) -> std::io::Result<()> {
    buf.clear();
    resp.encode(buf);
    write_frame(w, buf)
}

/// One step of incremental frame extraction from a [`FrameAssembler`].
#[derive(Debug)]
pub enum FrameStep<'a> {
    /// A complete frame payload (header already stripped). The borrow ends
    /// before the next call to [`FrameAssembler::next_frame`]; callers that
    /// need to keep it must copy.
    Frame(&'a [u8]),
    /// Not enough buffered bytes for a header + payload yet.
    Incomplete,
    /// The buffered header claims a payload larger than the limit. The
    /// connection is unrecoverable (resynchronising on a length-prefixed
    /// stream is impossible); the caller should answer with a typed error
    /// and close.
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The enforced ceiling.
        max: u32,
    },
}

/// Reassembles length-prefixed frames from arbitrary read chunks.
///
/// A nonblocking socket hands the reactor whatever bytes the kernel has —
/// half a header, three frames and a tail, anything. The assembler buffers
/// raw bytes ([`FrameAssembler::read_from`]) and yields complete payloads
/// ([`FrameAssembler::next_frame`]) without copying per frame: consumed
/// frames advance a start cursor and the buffer is compacted only when it
/// is fully drained (the common case after each readiness burst).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `read` worth of bytes from `r`. Returns the byte count
    /// (0 is EOF). `WouldBlock` is *propagated*, not swallowed: the caller
    /// owns the read-until-blocked loop.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `r`, including `WouldBlock`.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        // Read in reasonably large chunks so one readiness event drains
        // several frames per syscall.
        const CHUNK: usize = 16 * 1024;
        let len = self.buf.len();
        self.buf.resize(len + CHUNK, 0);
        match r.read(&mut self.buf[len..]) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// Extracts the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self, max: u32) -> FrameStep<'_> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            self.compact_if_drained();
            return FrameStep::Incomplete;
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > max {
            return FrameStep::Oversized { len, max };
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return FrameStep::Incomplete;
        }
        let frame_start = self.start + 4;
        self.start += total;
        FrameStep::Frame(&self.buf[frame_start..frame_start + len as usize])
    }

    /// Bytes buffered but not yet consumed as frames. Nonzero means a
    /// partial (or not-yet-dispatched) frame is pending — the signal that
    /// arms the slow-loris deadline.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact_if_drained(&mut self) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            // Pathological interleaving (many tiny frames followed by a
            // long partial) could otherwise pin a large buffer forever.
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// A per-connection outgoing byte queue for nonblocking sockets.
///
/// [`write_frame`] assumes a blocking stream: `write_all` on a socket
/// whose kernel buffer fills mid-frame would fail with `WouldBlock` and
/// tear the frame. The reactor instead queues encoded frames here and
/// flushes on writability; partial writes advance a cursor so the next
/// flush resumes exactly where the kernel stopped.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    pos: usize,
    scratch: Vec<u8>,
}

impl WriteBuffer {
    /// Creates an empty write buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `resp` and queues it as one frame (header + payload).
    pub fn queue_response(&mut self, resp: &Response) {
        self.scratch.clear();
        resp.encode(&mut self.scratch);
        let payload = std::mem::take(&mut self.scratch);
        self.queue_frame(&payload);
        self.scratch = payload;
    }

    /// Queues one already-encoded payload as a frame.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds `u32::MAX` bytes; every encodable
    /// [`Response`] is far below [`MAX_FRAME`].
    pub fn queue_frame(&mut self, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("frame payloads fit in u32");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Writes as much queued data as the socket accepts. Returns `true`
    /// when the queue drained, `false` when the socket blocked mid-queue
    /// (the caller should watch for writability).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `WouldBlock`/`Interrupted`; a
    /// clean `Ok(0)` from `w` is reported as `WriteZero`.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }

    /// Whether nothing is queued (the connection is write-quiescent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdl_testkit::Rng;

    fn roundtrip_request(req: &Request) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert!(buf.len() <= MAX_FRAME as usize);
        let back = Request::decode(&buf).expect("valid encoding decodes");
        assert_eq!(&back, req);
    }

    fn roundtrip_response(resp: &Response) {
        let mut buf = Vec::new();
        resp.encode(&mut buf);
        let back = Response::decode(&buf).expect("valid encoding decodes");
        assert_eq!(&back, resp);
    }

    fn sample_faults(rng: &mut Rng) -> WireFaults {
        let nv = rng.gen_range(0..4usize);
        let ne = rng.gen_range(0..3usize);
        WireFaults {
            vertices: (0..nv).map(|_| rng.gen_range(0..1000u32)).collect(),
            edges: (0..ne)
                .map(|_| (rng.gen_range(0..1000u32), rng.gen_range(0..1000u32)))
                .collect(),
        }
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
        roundtrip_request(&Request::Query {
            s: 0,
            t: u32::MAX,
            faults: WireFaults::empty(),
        });
        roundtrip_request(&Request::Update(UpdateOp::DeleteEdge(3, 900)));
        roundtrip_request(&Request::Update(UpdateOp::RestoreVertex(17)));
        roundtrip_request(&Request::LabelFetch { vertices: vec![] });
        roundtrip_request(&Request::LabelFetch {
            vertices: vec![0, 7, u32::MAX],
        });
        fsdl_testkit::check("request_roundtrip", 200, |rng| {
            let faults = sample_faults(rng);
            let req = match rng.gen_range(0..5u32) {
                0 => Request::Query {
                    s: rng.gen_range(0..500u32),
                    t: rng.gen_range(0..500u32),
                    faults,
                },
                1 => {
                    let k = rng.gen_range(0..6usize);
                    Request::Batch(
                        (0..k)
                            .map(|_| {
                                (
                                    rng.gen_range(0..500u32),
                                    rng.gen_range(0..500u32),
                                    sample_faults(rng),
                                )
                            })
                            .collect(),
                    )
                }
                2 => Request::Route {
                    s: rng.gen_range(0..500u32),
                    t: rng.gen_range(0..500u32),
                    faults,
                },
                3 => Request::Update(match rng.gen_range(0..4u32) {
                    0 => UpdateOp::DeleteVertex(rng.gen_range(0..500u32)),
                    1 => UpdateOp::DeleteEdge(rng.gen_range(0..500u32), rng.gen_range(0..500u32)),
                    2 => UpdateOp::RestoreVertex(rng.gen_range(0..500u32)),
                    _ => UpdateOp::RestoreEdge(rng.gen_range(0..500u32), rng.gen_range(0..500u32)),
                }),
                _ => {
                    let k = rng.gen_range(0..8usize);
                    Request::LabelFetch {
                        vertices: (0..k).map(|_| rng.gen_range(0..500u32)).collect(),
                    }
                }
            };
            roundtrip_request(&req);
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(&Response::Shutdown);
        roundtrip_response(&Response::Update { active_faults: 42 });
        roundtrip_response(&Response::Query(QueryReply {
            distance: u32::MAX,
            sketch_vertices: 0,
            sketch_edges: 0,
            path: vec![],
        }));
        roundtrip_response(&Response::Query(QueryReply {
            distance: 12,
            sketch_vertices: 40,
            sketch_edges: 120,
            path: vec![0, 5, 9, 12],
        }));
        roundtrip_response(&Response::Batch(vec![
            BatchItem {
                distance: 3,
                sketch_vertices: 10,
                sketch_edges: 20,
            };
            17
        ]));
        roundtrip_response(&Response::Route(RouteReply::Delivered {
            hops: 6,
            header_bits: 96,
            path: vec![1, 2, 3],
        }));
        roundtrip_response(&Response::Route(RouteReply::Failed("unreachable".into())));
        roundtrip_response(&Response::Stats(StatsReply {
            vertices: 144,
            dynamic: 1,
            active_faults: 3,
            connections: 9,
            queries: 1000,
            batch_queries: 4000,
            routes: 7,
            updates: 12,
            protocol_errors: 2,
            deadline_closes: 1,
            label_fetches: 5,
        }));
        roundtrip_response(&Response::LabelFetch(LabelFetchReply {
            generation: 12,
            epsilon_bits: 0.5f64.to_bits(),
            c: 24,
            vertices: 4096,
            labels: vec![
                LabelBytes {
                    vertex: 7,
                    bit_len: 19,
                    bytes: vec![0xAB, 0xCD, 0x05],
                },
                LabelBytes {
                    vertex: 4095,
                    bit_len: 0,
                    bytes: vec![],
                },
            ],
        }));
        roundtrip_response(&Response::Error(ErrorReply {
            code: ErrorCode::UnsupportedInMode,
            message: "route requires a static oracle".into(),
        }));
    }

    /// Any mutation of a valid encoding must decode to a typed error or a
    /// (different or equal) valid message — never panic. Mirrors the
    /// `labels::corrupt` chaos discipline at the wire layer.
    #[test]
    fn mutated_payloads_never_panic() {
        fsdl_testkit::check("mutated_request_payloads", 400, |rng| {
            let mut buf = Vec::new();
            Request::Query {
                s: rng.gen_range(0..100u32),
                t: rng.gen_range(0..100u32),
                faults: sample_faults(rng),
            }
            .encode(&mut buf);
            match rng.gen_range(0..3u32) {
                0 => {
                    // Bit flip.
                    let k = rng.gen_range(0..buf.len());
                    buf[k] ^= 1 << rng.gen_range(0..8u32);
                }
                1 => {
                    // Truncate.
                    let k = rng.gen_range(0..buf.len());
                    buf.truncate(k);
                }
                _ => {
                    // Splice garbage on the end.
                    let extra = rng.gen_range(1..9usize);
                    for _ in 0..extra {
                        buf.push(rng.gen_range(0..=255u32) as u8);
                    }
                }
            }
            let _ = Request::decode(&buf);
            let _ = Response::decode(&buf);
        });
    }

    #[test]
    fn batch_count_limit_is_enforced() {
        let mut buf = vec![2u8]; // BATCH opcode
        buf.extend_from_slice(&(MAX_BATCH + 1).to_le_bytes());
        match Request::decode(&buf) {
            Err(WireError::TooMany { what, .. }) => assert_eq!(what, "batch queries"),
            other => panic!("expected TooMany, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        Request::Stats.encode(&mut buf);
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn framing_roundtrip_and_limits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME, &mut buf).unwrap(),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"hello");
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME, &mut buf).unwrap(),
            FrameRead::Frame
        ));
        assert!(buf.is_empty());
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME, &mut buf).unwrap(),
            FrameRead::Eof
        ));

        // Oversized header is a typed frame error.
        let mut oversized = std::io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut oversized, MAX_FRAME, &mut buf),
            Err(FrameError::Oversized { .. })
        ));

        // Truncated payload is UnexpectedEof.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"full payload").unwrap();
        torn.truncate(torn.len() - 4);
        let mut cursor = std::io::Cursor::new(torn);
        match read_frame(&mut cursor, MAX_FRAME, &mut buf) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected truncated-payload error, got {other:?}"),
        }
    }

    /// Feeds `wire` to an assembler in chunks of `step` bytes and returns
    /// every extracted frame payload.
    fn reassemble(wire: &[u8], step: usize) -> Vec<Vec<u8>> {
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for chunk in wire.chunks(step) {
            let mut cursor = std::io::Cursor::new(chunk);
            let n = asm.read_from(&mut cursor).unwrap();
            assert_eq!(n, chunk.len());
            loop {
                match asm.next_frame(MAX_FRAME) {
                    FrameStep::Frame(payload) => frames.push(payload.to_vec()),
                    FrameStep::Incomplete => break,
                    FrameStep::Oversized { .. } => panic!("unexpected oversize"),
                }
            }
        }
        assert_eq!(asm.buffered(), 0, "all bytes consumed as frames");
        frames
    }

    #[test]
    fn assembler_reassembles_frames_split_at_every_offset() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 300]).unwrap();
        write_frame(&mut wire, b"omega").unwrap();
        let want: Vec<Vec<u8>> = vec![
            b"alpha".to_vec(),
            Vec::new(),
            vec![0xAB; 300],
            b"omega".to_vec(),
        ];
        // Every chunk size, including 1-byte drip-feed across the header
        // and payload boundaries, must yield the identical frame stream.
        for step in 1..=wire.len() {
            assert_eq!(reassemble(&wire, step), want, "chunk size {step}");
        }
    }

    #[test]
    fn assembler_reports_oversized_headers_without_consuming() {
        let mut asm = FrameAssembler::new();
        let wire = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(&wire[..]);
        asm.read_from(&mut cursor).unwrap();
        match asm.next_frame(MAX_FRAME) {
            FrameStep::Oversized { len, max } => {
                assert_eq!(len, MAX_FRAME + 1);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The poisoned header stays buffered: the connection must close,
        // not resynchronise.
        assert_eq!(asm.buffered(), 4);
    }

    #[test]
    fn assembler_propagates_would_block() {
        struct Blocked;
        impl std::io::Read for Blocked {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
        let mut asm = FrameAssembler::new();
        let err = asm.read_from(&mut Blocked).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(asm.buffered(), 0);
    }

    /// A writer that accepts at most `cap` bytes per call and blocks
    /// entirely every other call — the worst kernel send buffer.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        turn: bool,
    }

    impl std::io::Write for Throttled {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.turn = !self.turn;
            if !self.turn {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = data.len().min(self.cap);
            self.accepted.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buffer_survives_would_block_mid_frame() {
        let mut wb = WriteBuffer::new();
        wb.queue_response(&Response::Update { active_faults: 7 });
        wb.queue_frame(b"raw payload");
        assert!(!wb.is_empty());

        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 3,
            turn: false,
        };
        let mut flushes = 0usize;
        while !wb.flush(&mut sink).unwrap() {
            flushes += 1;
            assert!(flushes < 1000, "flush loop did not terminate");
        }
        assert!(wb.is_empty());

        // The byte stream is identical to the blocking writer's.
        let mut want = Vec::new();
        send_response(
            &mut want,
            &Response::Update { active_faults: 7 },
            &mut Vec::new(),
        )
        .unwrap();
        write_frame(&mut want, b"raw payload").unwrap();
        assert_eq!(sink.accepted, want);

        // Queueing after a drain reuses the compacted buffer.
        wb.queue_frame(b"again");
        let mut plain = Vec::new();
        assert!(wb.flush(&mut plain).unwrap());
        let mut want = Vec::new();
        write_frame(&mut want, b"again").unwrap();
        assert_eq!(plain, want);
    }
}
