//! Scatter-gather query router for sharded label stores.
//!
//! The paper's labels are *self-contained*: `δ(s, t, F)` needs only the
//! labels of `s`, `t`, and the faulted elements — at most `2 + |F|`
//! labels wherever they live. That makes horizontal sharding trivially
//! sound: split the vertex set across shard servers (see
//! [`fsdl_labels::partition`]), and a query touches at most `2 + |F|`
//! shards. The router is the piece that reassembles the illusion of a
//! single oracle:
//!
//! 1. **Accept** client `query` / `batch` frames on the same
//!    readiness-driven reactor loop the single-process server uses —
//!    one [`fsdl_reactor::Poller`] owns the listener, every client
//!    socket, *and* every upstream shard socket.
//! 2. **Scatter**: map each needed vertex id to its shard through the
//!    [`PartitionPlan`], and send `label-fetch` frames over pooled
//!    nonblocking upstream connections (chunked at
//!    [`MAX_LABEL_FETCH`] ids per frame).
//! 3. **Gather**: per-request join state counts outstanding chunks;
//!    each upstream connection answers in FIFO order (the protocol is
//!    strictly request/reply per connection), so replies are matched to
//!    requests without ids on the wire.
//! 4. **Decode + answer locally**: a worker pool decodes the gathered
//!    raw labels with the per-worker [`DecodeScratch`] fast path and
//!    runs [`fsdl_labels::query_with_scratch`] — the *same* entry point
//!    the single-process server uses — so answers are bit-identical:
//!    same distances, same sketch sizes, same witness paths.
//!
//! ## Token namespace
//!
//! The server's connection tokens are `(generation << 32) | slot`. The
//! router shares one poller between client and upstream sockets, so it
//! partitions the token space on bit 63: client tokens keep bit 63
//! clear (the generation is masked to 31 bits), upstream tokens are
//! `UPSTREAM_BIT | index` with a small fixed index. The reserved
//! listener/wake tokens live at the top of the upstream half, far above
//! any real upstream index.
//!
//! ## Failure semantics
//!
//! - A shard connection that errors or closes fails every request
//!   waiting on it with [`ErrorCode::Unavailable`]; the router then
//!   redials on a throttle, so a restarted shard heals without a router
//!   restart.
//! - A shard whose store generation changes mid-flight (it was
//!   restarted onto a new build) also answers `Unavailable` — mixing
//!   labels from different generations could silently combine two
//!   different labelings, so the router refuses rather than guesses.
//! - Validation the router cannot do (fault-*edge* membership in the
//!   graph — the router holds no graph) is the one divergence from the
//!   single-process server, which rejects such queries with
//!   `BadRequest`. The router computes the (sound) answer with the
//!   phantom edge simply ignored by decode. Endpoint and fault-vertex
//!   range checks behave identically.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::fs::FileTypeExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fsdl_graph::NodeId;
use fsdl_labels::codec::{self, VarintScratch};
use fsdl_labels::partition::PartitionPlan;
use fsdl_labels::{query_with_scratch, DecodeScratch, Label, QueryLabels, SchemeParams};
use fsdl_reactor::{Interest, Poller};

use crate::client::{Client, ClientError};
use crate::protocol::{
    self, BatchItem, ErrorCode, ErrorReply, FrameError, FrameStep, QueryReply, Request, Response,
    StatsReply, WireFaults, MAX_FRAME, MAX_LABEL_FETCH, MAX_LABEL_FRAME,
};
use crate::server::{BoundListener, Conn, Endpoint, ShutdownHandle, LISTENER_TOKEN, WAKE_TOKEN};

/// Upstream tokens set bit 63; client tokens never do (their generation
/// is masked to 31 bits), so one poller can route both kinds.
const UPSTREAM_BIT: u64 = 1 << 63;

/// Composes the next client-connection token: a 31-bit generation in
/// bits 32..63 (bit 63 stays clear — that half of the token space
/// belongs to upstream sockets) over the slot index. The server-side
/// `next_token` loop that dodges the reserved tokens is unnecessary
/// here: [`LISTENER_TOKEN`] and [`WAKE_TOKEN`] both have bit 63 set, so
/// no client token can collide with them by construction.
fn client_token(next_generation: &mut u32, slot: usize) -> u64 {
    *next_generation = next_generation.wrapping_add(1);
    (u64::from(*next_generation & 0x7FFF_FFFF) << 32) | slot as u64
}

/// Router tunables.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Decode/compute worker threads (0 = auto, as in
    /// [`crate::ServerConfig`]).
    pub workers: usize,
    /// Frame payload ceiling in bytes (client and upstream sides).
    pub max_frame: u32,
    /// Upper bound on how long the event loop sleeps when idle.
    pub poll_interval: Duration,
    /// Slow-loris deadline for client connections holding a partial
    /// frame, and the shutdown drain grace period.
    pub frame_deadline: Duration,
    /// Upstream connections opened per shard (round-robined; min 1).
    pub pool_per_shard: usize,
    /// How long [`Router::bind`] waits for each shard to accept the
    /// handshake `label-fetch` before giving up.
    pub handshake_budget: Duration,
    /// Minimum pause between redial attempts to a dead shard.
    pub redial_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 0,
            max_frame: MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            frame_deadline: Duration::from_secs(10),
            pool_per_shard: 2,
            handshake_budget: Duration::from_secs(10),
            redial_interval: Duration::from_millis(500),
        }
    }
}

/// Errors [`Router::bind`] can produce.
#[derive(Debug)]
pub enum RouterError {
    /// Listener or reactor setup failed.
    Io(std::io::Error),
    /// A shard rejected or failed the handshake `label-fetch`.
    Handshake {
        /// The shard index that failed.
        shard: usize,
        /// What went wrong.
        message: String,
    },
    /// The partition plan and the shard fleet disagree (count, vertex
    /// space, or decode parameters).
    Plan(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "router setup failed: {e}"),
            RouterError::Handshake { shard, message } => {
                write!(f, "shard {shard} handshake failed: {message}")
            }
            RouterError::Plan(msg) => write!(f, "partition plan mismatch: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Io(e)
    }
}

/// Totals from one [`Router::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterReport {
    /// Client connections accepted.
    pub connections: u64,
    /// Single queries answered successfully.
    pub queries: u64,
    /// Queries answered inside batch frames.
    pub batch_queries: u64,
    /// `label-fetch` frames sent upstream.
    pub upstream_fetches: u64,
    /// Typed error replies sent to clients.
    pub protocol_errors: u64,
    /// Upstream connection failures (dial, mid-flight error, generation
    /// change) that surfaced as `Unavailable` or triggered a redial.
    pub shard_failures: u64,
    /// Client connections closed for stalling mid-frame.
    pub deadline_closes: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    upstream_fetches: AtomicU64,
    protocol_errors: AtomicU64,
    shard_failures: AtomicU64,
    deadline_closes: AtomicU64,
}

/// What one shard fleet member looks like after the handshake.
#[derive(Clone, Debug)]
struct ShardIdentity {
    generation: u64,
    epsilon_bits: u64,
    c: u32,
    vertices: u64,
}

/// A parsed client request the router can answer (everything else is
/// rejected before join state is created).
enum PlannedRequest {
    Query {
        s: u32,
        t: u32,
        faults: WireFaults,
    },
    Batch(Vec<(u32, u32, WireFaults)>),
}

/// Join state for one in-flight scatter-gather.
struct Pending {
    client: u64,
    request: PlannedRequest,
    /// vertex id -> (encoded bytes, bit length), filled as chunks land.
    labels: HashMap<u32, (Vec<u8>, u32)>,
    /// Chunks still unanswered.
    outstanding: usize,
    /// First failure, if any; the reply once everything lands.
    failed: Option<ErrorReply>,
}

/// One pooled upstream connection to a shard.
struct Upstream {
    shard: usize,
    endpoint: Endpoint,
    conn: Option<Conn>,
    assembler: protocol::FrameAssembler,
    write_buf: protocol::WriteBuffer,
    /// In-flight chunks in send order — the pending-request id plus the
    /// ids that chunk asked for; the protocol is strict request/reply
    /// per connection, so the front entry owns the next reply frame.
    /// The requested ids are kept because a reply may be a short prefix
    /// (the shard packs to its byte budget) and the tail must be
    /// re-requested.
    fifo: VecDeque<(u64, Vec<u32>)>,
    registered: Interest,
    last_attempt: Instant,
}

impl Upstream {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: true,
            writable: !self.write_buf.is_empty(),
        }
    }
}

/// Per-client-connection state (mirror of the server's `Connection`).
struct ClientConn {
    stream: Conn,
    assembler: protocol::FrameAssembler,
    write_buf: protocol::WriteBuffer,
    token: u64,
    /// A scatter-gather (or local compute) owes this connection a
    /// reply; readability is not watched meanwhile.
    in_flight: bool,
    peer_closed: bool,
    close_after_flush: bool,
    deadline: Option<Instant>,
    registered: Interest,
}

impl ClientConn {
    fn desired_interest(&self, draining: bool) -> Interest {
        Interest {
            readable: !self.in_flight && !self.close_after_flush && !self.peer_closed && !draining,
            writable: !self.write_buf.is_empty(),
        }
    }
}

/// A gathered request on its way to a decode worker.
struct ComputeJob {
    token: u64,
    request: PlannedRequest,
    labels: HashMap<u32, (Vec<u8>, u32)>,
}

/// An encoded reply on its way back from a worker.
struct Completion {
    token: u64,
    payload: Vec<u8>,
}

fn connect_upstream(endpoint: &Endpoint) -> std::io::Result<Conn> {
    Ok(match endpoint {
        Endpoint::Tcp(addr) => Conn::Tcp(TcpStream::connect(addr.as_str())?),
        Endpoint::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
    })
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: BoundListener,
    plan: PartitionPlan,
    params: Arc<SchemeParams>,
    expected_generation: Vec<u64>,
    config: RouterConfig,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    upstreams: Vec<Upstream>,
}

impl Router {
    /// Binds the client listener, handshakes every shard (learning and
    /// cross-checking generation, epsilon, `c`, and the global vertex
    /// count), and opens the upstream connection pool.
    ///
    /// # Errors
    ///
    /// [`RouterError::Plan`] when the fleet disagrees with the plan or
    /// itself; [`RouterError::Handshake`] when a shard cannot be
    /// reached; [`RouterError::Io`] for listener/reactor failures.
    pub fn bind(
        endpoint: &Endpoint,
        shard_endpoints: Vec<Endpoint>,
        plan: PartitionPlan,
        config: RouterConfig,
    ) -> Result<Router, RouterError> {
        if shard_endpoints.len() != plan.num_shards() as usize {
            return Err(RouterError::Plan(format!(
                "plan names {} shards but {} endpoints were given",
                plan.num_shards(),
                shard_endpoints.len()
            )));
        }
        let identity = Router::handshake_fleet(&shard_endpoints, &config)?;
        let n = identity[0].vertices;
        if n != plan.num_vertices() as u64 {
            return Err(RouterError::Plan(format!(
                "shards serve {} vertices but the plan covers {}",
                n,
                plan.num_vertices()
            )));
        }
        let epsilon = f64::from_bits(identity[0].epsilon_bits);
        if !epsilon.is_finite() || epsilon <= 0.0 || n == 0 {
            return Err(RouterError::Plan(format!(
                "shards report unusable decode parameters (epsilon={epsilon}, n={n})"
            )));
        }
        let params = Arc::new(SchemeParams::with_c(epsilon, identity[0].c, n as usize));

        let listener = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                BoundListener::Tcp(l)
            }
            Endpoint::Unix(path) => {
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    if meta.file_type().is_socket() {
                        std::fs::remove_file(path)?;
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                BoundListener::Unix(l, path.clone())
            }
        };
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READABLE)?;

        // The pool: `pool_per_shard` connections per shard, registered
        // under fixed `UPSTREAM_BIT | index` tokens. Indexes are stable
        // for the router's lifetime; redials reuse them.
        let pool = config.pool_per_shard.max(1);
        let mut upstreams = Vec::with_capacity(shard_endpoints.len() * pool);
        for (shard, ep) in shard_endpoints.iter().enumerate() {
            for _ in 0..pool {
                let idx = upstreams.len();
                let token = UPSTREAM_BIT | idx as u64;
                let conn = match connect_upstream(ep) {
                    Ok(c) => {
                        c.set_nonblocking(true)?;
                        poller.register(c.as_raw_fd(), token, Interest::READABLE)?;
                        Some(c)
                    }
                    // The handshake just succeeded, so a dial failure
                    // here is a race with a shard restart; the redial
                    // loop will heal it.
                    Err(_) => None,
                };
                upstreams.push(Upstream {
                    shard,
                    endpoint: ep.clone(),
                    conn,
                    assembler: protocol::FrameAssembler::new(),
                    write_buf: protocol::WriteBuffer::new(),
                    fifo: VecDeque::new(),
                    registered: Interest::READABLE,
                    last_attempt: Instant::now(),
                });
            }
        }

        Ok(Router {
            listener,
            plan,
            params,
            expected_generation: identity.iter().map(|i| i.generation).collect(),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            poller,
            wake_rx,
            wake_tx: Arc::new(wake_tx),
            upstreams,
        })
    }

    /// Blocking handshake with each shard: an empty `label-fetch` is the
    /// identity probe (generation + decode parameters, no labels). All
    /// shards must agree on everything but the generation.
    fn handshake_fleet(
        shard_endpoints: &[Endpoint],
        config: &RouterConfig,
    ) -> Result<Vec<ShardIdentity>, RouterError> {
        let mut identity = Vec::with_capacity(shard_endpoints.len());
        for (shard, ep) in shard_endpoints.iter().enumerate() {
            let reply = Client::connect_with_retry(ep, config.handshake_budget)
                .and_then(|mut c| c.label_fetch(Vec::new()))
                .map_err(|e: ClientError| RouterError::Handshake {
                    shard,
                    message: e.to_string(),
                })?;
            identity.push(ShardIdentity {
                generation: reply.generation,
                epsilon_bits: reply.epsilon_bits,
                c: reply.c,
                vertices: reply.vertices,
            });
        }
        let first = &identity[0];
        for (shard, id) in identity.iter().enumerate() {
            if (id.epsilon_bits, id.c, id.vertices)
                != (first.epsilon_bits, first.c, first.vertices)
            {
                return Err(RouterError::Plan(format!(
                    "shard {shard} disagrees with shard 0: \
                     (epsilon_bits, c, n) = ({}, {}, {}) vs ({}, {}, {})",
                    id.epsilon_bits,
                    id.c,
                    id.vertices,
                    first.epsilon_bits,
                    first.c,
                    first.vertices
                )));
            }
        }
        Ok(identity)
    }

    /// The client endpoint actually bound (port 0 resolved).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_endpoint(&self) -> std::io::Result<Endpoint> {
        Ok(match &self.listener {
            BoundListener::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Endpoint::Tcp(addr.to_string())
            }
            BoundListener::Unix(_, path) => Endpoint::Unix(path.clone()),
        })
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle::new(Arc::clone(&self.shutdown))
    }

    /// Runs the router until shutdown; blocks the calling thread.
    pub fn run(self) -> RouterReport {
        let workers = if self.config.workers == 0 {
            fsdl_nets::parallel::background_workers(usize::MAX)
        } else {
            self.config.workers
        };
        assert!(workers >= 1, "router worker pool must not be empty");
        let counters = Arc::new(Counters::default());
        let shutdown = Arc::clone(&self.shutdown);
        let (job_tx, job_rx): (Sender<ComputeJob>, Receiver<ComputeJob>) =
            std::sync::mpsc::channel();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));

        let Router {
            listener,
            plan,
            params,
            expected_generation,
            config,
            poller,
            wake_rx,
            wake_tx,
            upstreams,
            ..
        } = self;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let params = Arc::clone(&params);
                let counters = Arc::clone(&counters);
                let completions = Arc::clone(&completions);
                let wake_tx = Arc::clone(&wake_tx);
                scope.spawn(move || {
                    let mut scratch = DecodeScratch::new();
                    let mut varints = VarintScratch::new();
                    loop {
                        let job = {
                            let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(job) = job else { break };
                        let response =
                            compute_answer(&job, &params, &counters, &mut scratch, &mut varints);
                        if matches!(response, Response::Error(_)) {
                            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut payload = Vec::new();
                        response.encode(&mut payload);
                        completions
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back(Completion {
                                token: job.token,
                                payload,
                            });
                        let _ = (&*wake_tx).write(&[1]);
                    }
                });
            }

            let mut reactor = RouterLoop {
                poller,
                listener: &listener,
                wake_rx: &wake_rx,
                config: &config,
                counters: &counters,
                shutdown: &shutdown,
                job_tx,
                completions: &completions,
                plan: &plan,
                expected_generation,
                upstreams,
                rr: vec![0; plan.num_shards() as usize],
                pending: HashMap::new(),
                next_pending: 0,
                slab: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                armed_deadlines: 0,
                open: 0,
            };
            reactor.run();
        });

        if let BoundListener::Unix(_, path) = &listener {
            let _ = std::fs::remove_file(path);
        }

        RouterReport {
            connections: counters.connections.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            batch_queries: counters.batch_queries.load(Ordering::Relaxed),
            upstream_fetches: counters.upstream_fetches.load(Ordering::Relaxed),
            protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
            shard_failures: counters.shard_failures.load(Ordering::Relaxed),
            deadline_closes: counters.deadline_closes.load(Ordering::Relaxed),
        }
    }
}

/// The readiness-driven core of [`Router::run`].
struct RouterLoop<'a> {
    poller: Poller,
    listener: &'a BoundListener,
    wake_rx: &'a UnixStream,
    config: &'a RouterConfig,
    counters: &'a Counters,
    shutdown: &'a AtomicBool,
    job_tx: Sender<ComputeJob>,
    completions: &'a Mutex<VecDeque<Completion>>,
    plan: &'a PartitionPlan,
    expected_generation: Vec<u64>,
    upstreams: Vec<Upstream>,
    /// Round-robin cursor per shard over its pool slice.
    rr: Vec<usize>,
    /// In-flight scatter-gathers keyed by a never-recycled id — the
    /// upstream FIFOs store these ids, so a finished or failed request
    /// can never be confused with a later one.
    pending: HashMap<u64, Pending>,
    next_pending: u64,
    slab: Vec<Option<ClientConn>>,
    free: Vec<usize>,
    next_generation: u32,
    armed_deadlines: usize,
    open: usize,
}

impl RouterLoop<'_> {
    fn pool(&self) -> usize {
        self.upstreams.len() / self.rr.len().max(1)
    }

    fn run(&mut self) {
        let mut events = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            if !draining && self.shutdown.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline = Instant::now() + self.config.frame_deadline;
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                self.close_quiescent();
            }
            if draining {
                if self.open == 0 {
                    break;
                }
                if Instant::now() >= drain_deadline {
                    self.close_all_clients();
                    break;
                }
            }

            let timeout = self.wait_timeout(draining.then_some(drain_deadline));
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                self.shutdown.store(true, Ordering::SeqCst);
                continue;
            }
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN if !draining => self.accept_ready(),
                    LISTENER_TOKEN => {}
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    token if token & UPSTREAM_BIT != 0 => {
                        self.upstream_ready((token & !UPSTREAM_BIT) as usize, ev.writable);
                    }
                    token => self.client_ready(token, ev.writable, draining),
                }
            }
            self.drain_completions(draining);
            if self.armed_deadlines > 0 && !draining {
                self.expire_deadlines();
            }
            if !draining {
                self.redial_dead_upstreams();
            }
        }
        // Drop the upstream pool explicitly so shard servers see clean
        // EOFs before the router's report is assembled.
        for up in &mut self.upstreams {
            if let Some(conn) = up.conn.take() {
                let _ = self.poller.deregister(conn.as_raw_fd());
            }
        }
    }

    fn wait_timeout(&self, drain_deadline: Option<Instant>) -> Duration {
        let mut timeout = self.config.poll_interval;
        let now = Instant::now();
        if self.armed_deadlines > 0 {
            for conn in self.slab.iter().flatten() {
                if let Some(d) = conn.deadline {
                    timeout = timeout.min(d.saturating_duration_since(now));
                }
            }
        }
        if let Some(d) = drain_deadline {
            timeout = timeout.min(d.saturating_duration_since(now));
        }
        timeout
    }

    // ---- client side -------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener {
                BoundListener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                BoundListener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.counters.connections.fetch_add(1, Ordering::Relaxed);
                    self.insert_client(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    fn insert_client(&mut self, conn: Conn) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let token = client_token(&mut self.next_generation, slot);
        let fd = conn.as_raw_fd();
        let connection = ClientConn {
            stream: conn,
            assembler: protocol::FrameAssembler::new(),
            write_buf: protocol::WriteBuffer::new(),
            token,
            in_flight: false,
            peer_closed: false,
            close_after_flush: false,
            deadline: None,
            registered: Interest::READABLE,
        };
        if self.poller.register(fd, token, Interest::READABLE).is_err() {
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(connection);
        self.open += 1;
    }

    fn live_slot(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize;
        match self.slab.get(slot) {
            Some(Some(conn)) if conn.token == token => Some(slot),
            _ => None,
        }
    }

    fn close_client(&mut self, slot: usize) {
        if let Some(conn) = self.slab[slot].take() {
            if conn.deadline.is_some() {
                self.armed_deadlines -= 1;
            }
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.open -= 1;
        }
    }

    fn close_quiescent(&mut self) {
        for slot in 0..self.slab.len() {
            let quiescent = matches!(
                &self.slab[slot],
                Some(conn) if !conn.in_flight && conn.write_buf.is_empty()
            );
            if quiescent {
                self.close_client(slot);
            }
        }
    }

    fn close_all_clients(&mut self) {
        for slot in 0..self.slab.len() {
            self.close_client(slot);
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 256];
        let mut pipe = self.wake_rx;
        loop {
            match pipe.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn client_ready(&mut self, token: u64, writable: bool, draining: bool) {
        let Some(slot) = self.live_slot(token) else {
            return;
        };
        if writable && !self.flush_client(slot) {
            return;
        }
        let conn = self.slab[slot].as_mut().expect("live slot");
        if !conn.peer_closed && !conn.close_after_flush {
            loop {
                match conn.assembler.read_from(&mut conn.stream) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close_client(slot);
                        return;
                    }
                }
            }
        }
        self.pump_client(slot, draining);
    }

    /// Moves buffered frames through the request pipeline and settles
    /// the connection's deadline, interest, and close state. Locally
    /// answerable frames (stats, errors) are served in a loop; a frame
    /// that starts a scatter-gather sets `in_flight` and stops it.
    fn pump_client(&mut self, slot: usize, draining: bool) {
        loop {
            let conn = self.slab[slot].as_mut().expect("live slot");
            if conn.in_flight || conn.close_after_flush || draining {
                break;
            }
            match conn.assembler.next_frame(self.config.max_frame) {
                FrameStep::Frame(payload) => {
                    let frame = payload.to_vec();
                    self.disarm_deadline(slot);
                    self.handle_client_frame(slot, &frame);
                    // `handle_client_frame` may have closed the slot
                    // (upstream dial storm is not a path here, but a
                    // queued reply may have flushed a close).
                    if self.slab[slot].is_none() {
                        return;
                    }
                }
                FrameStep::Incomplete => {
                    let conn = self.slab[slot].as_mut().expect("live slot");
                    if conn.peer_closed {
                        if conn.write_buf.is_empty() && !conn.in_flight {
                            self.close_client(slot);
                        } else {
                            conn.close_after_flush = true;
                        }
                        return;
                    }
                    if conn.assembler.buffered() > 0 {
                        if conn.deadline.is_none() {
                            conn.deadline = Some(Instant::now() + self.config.frame_deadline);
                            self.armed_deadlines += 1;
                        }
                    } else {
                        self.disarm_deadline(slot);
                    }
                    break;
                }
                FrameStep::Oversized { len, max } => {
                    self.counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let message = FrameError::Oversized { len, max }.to_string();
                    conn.write_buf.queue_response(&Response::Error(ErrorReply {
                        code: ErrorCode::Oversized,
                        message,
                    }));
                    conn.close_after_flush = true;
                    self.disarm_deadline(slot);
                    break;
                }
            }
        }
        if self.slab[slot].is_none() || !self.flush_client(slot) {
            return;
        }
        self.update_client_interest(slot, draining);
    }

    fn disarm_deadline(&mut self, slot: usize) {
        let conn = self.slab[slot].as_mut().expect("live slot");
        if conn.deadline.take().is_some() {
            self.armed_deadlines -= 1;
        }
    }

    fn flush_client(&mut self, slot: usize) -> bool {
        let Some(conn) = self.slab[slot].as_mut() else {
            return false;
        };
        match conn.write_buf.flush(&mut conn.stream) {
            Ok(true) => {
                if conn.close_after_flush {
                    self.close_client(slot);
                    return false;
                }
                true
            }
            Ok(false) => true,
            Err(_) => {
                self.close_client(slot);
                false
            }
        }
    }

    fn update_client_interest(&mut self, slot: usize, draining: bool) {
        let Some(conn) = self.slab[slot].as_mut() else {
            return;
        };
        let desired = conn.desired_interest(draining);
        if desired != conn.registered {
            conn.registered = desired;
            let fd = conn.stream.as_raw_fd();
            let token = conn.token;
            if self.poller.modify(fd, token, desired).is_err() {
                self.close_client(slot);
            }
        }
    }

    /// Answers one decoded client frame: locally when possible,
    /// otherwise by starting a scatter-gather.
    fn handle_client_frame(&mut self, slot: usize, frame: &[u8]) {
        let request = match Request::decode(frame) {
            Ok(r) => r,
            Err(wire_err) => {
                self.reply_error(slot, wire_err.code(), wire_err.to_string());
                return;
            }
        };
        match request {
            Request::Query { s, t, faults } => {
                self.start_gather(slot, PlannedRequest::Query { s, t, faults });
            }
            Request::Batch(queries) => {
                self.start_gather(slot, PlannedRequest::Batch(queries));
            }
            Request::Stats => {
                let reply = Response::Stats(StatsReply {
                    vertices: self.plan.num_vertices() as u64,
                    dynamic: 0,
                    active_faults: 0,
                    connections: self.counters.connections.load(Ordering::Relaxed),
                    queries: self.counters.queries.load(Ordering::Relaxed),
                    batch_queries: self.counters.batch_queries.load(Ordering::Relaxed),
                    routes: 0,
                    updates: 0,
                    protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
                    deadline_closes: self.counters.deadline_closes.load(Ordering::Relaxed),
                    label_fetches: self.counters.upstream_fetches.load(Ordering::Relaxed),
                });
                let conn = self.slab[slot].as_mut().expect("live slot");
                conn.write_buf.queue_response(&reply);
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                let conn = self.slab[slot].as_mut().expect("live slot");
                conn.write_buf.queue_response(&Response::Shutdown);
                conn.close_after_flush = true;
            }
            Request::Route { .. } => {
                self.reply_error(
                    slot,
                    ErrorCode::UnsupportedInMode,
                    "route requires a single-process static server; \
                     the router serves distance queries only",
                );
            }
            Request::Update(_) => {
                self.reply_error(
                    slot,
                    ErrorCode::UnsupportedInMode,
                    "update requires a dynamic oracle; the router fronts immutable shards",
                );
            }
            Request::LabelFetch { .. } => {
                self.reply_error(
                    slot,
                    ErrorCode::UnsupportedInMode,
                    "label-fetch is the shard-facing op; send query or batch frames here",
                );
            }
        }
    }

    fn reply_error(&mut self, slot: usize, code: ErrorCode, message: impl Into<String>) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        let conn = self.slab[slot].as_mut().expect("live slot");
        conn.write_buf.queue_response(&Response::Error(ErrorReply {
            code,
            message: message.into(),
        }));
    }

    /// Plans and launches one scatter-gather, or answers immediately
    /// when validation fails or a needed shard has no live connection.
    fn start_gather(&mut self, slot: usize, request: PlannedRequest) {
        let n = self.plan.num_vertices();
        let ids = needed_ids(&request);
        if let Some(&bad) = ids.iter().find(|&&v| v as usize >= n) {
            self.reply_error(
                slot,
                ErrorCode::BadRequest,
                format!("vertex {bad} out of range for a graph of {n} vertices"),
            );
            return;
        }
        // Group the (sorted, deduped) ids by owning shard, then chunk
        // each group at the wire cap.
        let mut by_shard: HashMap<u32, Vec<u32>> = HashMap::new();
        for &v in &ids {
            by_shard
                .entry(self.plan.shard_of(NodeId::new(v)))
                .or_default()
                .push(v);
        }
        // All needed shards must have a live connection before anything
        // is enqueued — a half-scattered request would tie up upstream
        // FIFO slots for a reply we already know we cannot assemble.
        let mut routes: Vec<(usize, Vec<u32>)> = Vec::with_capacity(by_shard.len());
        for (&shard, group) in &by_shard {
            match self.pick_upstream(shard as usize) {
                Some(_) => {
                    for chunk in group.chunks(MAX_LABEL_FETCH as usize) {
                        routes.push((shard as usize, chunk.to_vec()));
                    }
                }
                None => {
                    self.counters.shard_failures.fetch_add(1, Ordering::Relaxed);
                    self.reply_error(
                        slot,
                        ErrorCode::Unavailable,
                        format!("shard {shard} is unavailable"),
                    );
                    return;
                }
            }
        }
        let token = self.slab[slot].as_ref().expect("live slot").token;
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(
            id,
            Pending {
                client: token,
                request,
                labels: HashMap::with_capacity(ids.len()),
                outstanding: routes.len(),
                failed: None,
            },
        );
        self.slab[slot].as_mut().expect("live slot").in_flight = true;
        for (shard, chunk) in routes {
            let idx = self
                .pick_upstream(shard)
                .expect("liveness was checked before enqueueing");
            self.counters
                .upstream_fetches
                .fetch_add(1, Ordering::Relaxed);
            let mut payload = Vec::new();
            Request::LabelFetch {
                vertices: chunk.clone(),
            }
            .encode(&mut payload);
            let up = &mut self.upstreams[idx];
            up.write_buf.queue_frame(&payload);
            up.fifo.push_back((id, chunk));
            self.update_upstream_interest(idx);
        }
    }

    /// Picks the next live connection in `shard`'s pool slice
    /// (round-robin), or `None` when the whole slice is down.
    fn pick_upstream(&mut self, shard: usize) -> Option<usize> {
        let pool = self.pool();
        let base = shard * pool;
        for step in 0..pool {
            let idx = base + (self.rr[shard] + step) % pool;
            if self.upstreams[idx].conn.is_some() {
                self.rr[shard] = (self.rr[shard] + step + 1) % pool;
                return Some(idx);
            }
        }
        None
    }

    // ---- upstream side ----------------------------------------------

    fn upstream_ready(&mut self, idx: usize, writable: bool) {
        if idx >= self.upstreams.len() {
            return;
        }
        if writable && !self.flush_upstream(idx) {
            return;
        }
        let up = &mut self.upstreams[idx];
        let Some(conn) = up.conn.as_mut() else {
            return;
        };
        let mut dead = false;
        loop {
            match up.assembler.read_from(conn) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        // Serve every complete reply frame that arrived, even when the
        // connection died right after sending them. Label-plane replies
        // read under the larger MAX_LABEL_FRAME cap: labels are
        // poly(1/eps, log n) bytes each, so a legitimate multi-label
        // reply can exceed the client-facing frame ceiling.
        loop {
            let frame = match self.upstreams[idx].assembler.next_frame(MAX_LABEL_FRAME) {
                FrameStep::Frame(payload) => payload.to_vec(),
                FrameStep::Incomplete => break,
                FrameStep::Oversized { .. } => {
                    dead = true;
                    break;
                }
            };
            if !self.absorb_upstream_frame(idx, &frame) {
                dead = true;
                break;
            }
        }
        if dead {
            self.fail_upstream(idx);
        } else {
            self.update_upstream_interest(idx);
        }
    }

    /// Matches one upstream reply frame to the front of the FIFO and
    /// folds it into the pending request. Returns `false` when the
    /// stream is desynchronized and the connection must be dropped.
    fn absorb_upstream_frame(&mut self, idx: usize, frame: &[u8]) -> bool {
        let shard = self.upstreams[idx].shard;
        let Some((pending_id, requested)) = self.upstreams[idx].fifo.pop_front() else {
            // A reply nobody asked for: protocol desync.
            return false;
        };
        let outcome = match Response::decode(frame) {
            Ok(Response::LabelFetch(reply)) => {
                if reply.generation != self.expected_generation[shard] {
                    self.counters.shard_failures.fetch_add(1, Ordering::Relaxed);
                    Err(ErrorReply {
                        code: ErrorCode::Unavailable,
                        message: format!(
                            "shard {shard} changed store generation ({} -> {}) mid-flight",
                            self.expected_generation[shard], reply.generation
                        ),
                    })
                } else if reply.labels.len() > requested.len()
                    || (reply.labels.is_empty() && !requested.is_empty())
                    || reply
                        .labels
                        .iter()
                        .zip(&requested)
                        .any(|(lb, &v)| lb.vertex != v)
                {
                    // Replies must be a non-empty request prefix (short
                    // when the shard packed to its byte budget): anything
                    // else means the stream no longer lines up.
                    Err(ErrorReply {
                        code: ErrorCode::Internal,
                        message: format!(
                            "shard {shard} label-fetch reply was not a prefix of the request"
                        ),
                    })
                } else {
                    Ok(reply.labels)
                }
            }
            Ok(Response::Error(e)) => Err(ErrorReply {
                code: ErrorCode::Internal,
                message: format!("shard {shard} rejected a label-fetch [{}]: {}", e.code, e.message),
            }),
            Ok(other) => Err(ErrorReply {
                code: ErrorCode::Internal,
                message: format!(
                    "shard {shard} answered a label-fetch with {}",
                    other.kind_name()
                ),
            }),
            Err(wire_err) => Err(ErrorReply {
                code: ErrorCode::Internal,
                message: format!("shard {shard} sent an undecodable reply: {wire_err}"),
            }),
        };
        let desynced = matches!(outcome, Err(ref e) if e.code == ErrorCode::Internal);
        // When the pending was already failed and reaped (its other
        // chunks died with another connection) there is nothing to fold
        // and a short reply's tail is not worth fetching.
        let mut short_tail: Option<Vec<u32>> = None;
        let mut complete = false;
        match outcome {
            Ok(labels) => {
                if let Some(pending) = self.pending.get_mut(&pending_id) {
                    let served = labels.len();
                    for lb in labels {
                        pending.labels.insert(lb.vertex, (lb.bytes, lb.bit_len));
                    }
                    if served < requested.len() {
                        short_tail = Some(requested[served..].to_vec());
                    } else {
                        pending.outstanding -= 1;
                        complete = pending.outstanding == 0;
                    }
                }
            }
            Err(e) => {
                if let Some(pending) = self.pending.get_mut(&pending_id) {
                    pending.failed.get_or_insert(e);
                    pending.outstanding -= 1;
                    complete = pending.outstanding == 0;
                }
            }
        }
        if let Some(tail) = short_tail {
            // Short reply: the shard packed to its byte budget. The
            // chunk stays outstanding; re-request the unserved suffix on
            // the same connection so FIFO order keeps holding.
            self.counters
                .upstream_fetches
                .fetch_add(1, Ordering::Relaxed);
            let mut payload = Vec::new();
            Request::LabelFetch {
                vertices: tail.clone(),
            }
            .encode(&mut payload);
            let up = &mut self.upstreams[idx];
            up.write_buf.queue_frame(&payload);
            up.fifo.push_back((pending_id, tail));
        }
        if complete {
            self.finish_pending(pending_id);
        }
        !desynced
    }

    /// A pending is fully gathered (or fully failed): hand it to a
    /// worker or answer the client with the recorded failure.
    fn finish_pending(&mut self, pending_id: u64) {
        let Some(pending) = self.pending.remove(&pending_id) else {
            return;
        };
        let Some(slot) = self.live_slot(pending.client) else {
            return; // client left mid-gather; drop the work
        };
        match pending.failed {
            Some(err) => {
                self.counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let conn = self.slab[slot].as_mut().expect("live slot");
                conn.in_flight = false;
                conn.write_buf.queue_response(&Response::Error(err));
                self.pump_client(slot, false);
            }
            None => {
                let job = ComputeJob {
                    token: pending.client,
                    request: pending.request,
                    labels: pending.labels,
                };
                if self.job_tx.send(job).is_err() {
                    self.close_client(slot);
                }
            }
        }
    }

    fn flush_upstream(&mut self, idx: usize) -> bool {
        let up = &mut self.upstreams[idx];
        let Some(conn) = up.conn.as_mut() else {
            return false;
        };
        match up.write_buf.flush(conn) {
            Ok(_) => true,
            Err(_) => {
                self.fail_upstream(idx);
                false
            }
        }
    }

    fn update_upstream_interest(&mut self, idx: usize) {
        let up = &mut self.upstreams[idx];
        let Some(conn) = up.conn.as_ref() else {
            return;
        };
        let desired = up.desired_interest();
        if desired != up.registered {
            up.registered = desired;
            let fd = conn.as_raw_fd();
            let token = UPSTREAM_BIT | idx as u64;
            if self.poller.modify(fd, token, desired).is_err() {
                self.fail_upstream(idx);
            }
        }
    }

    /// Tears down one upstream connection: every request waiting on its
    /// FIFO fails with `Unavailable`, buffers reset, and the redial
    /// throttle starts.
    fn fail_upstream(&mut self, idx: usize) {
        let shard = self.upstreams[idx].shard;
        if let Some(conn) = self.upstreams[idx].conn.take() {
            let _ = self.poller.deregister(conn.as_raw_fd());
            self.counters.shard_failures.fetch_add(1, Ordering::Relaxed);
        }
        let up = &mut self.upstreams[idx];
        up.assembler = protocol::FrameAssembler::new();
        up.write_buf = protocol::WriteBuffer::new();
        up.last_attempt = Instant::now();
        let orphans: Vec<(u64, Vec<u32>)> = up.fifo.drain(..).collect();
        for (pending_id, _requested) in orphans {
            let Some(pending) = self.pending.get_mut(&pending_id) else {
                continue;
            };
            pending.failed.get_or_insert(ErrorReply {
                code: ErrorCode::Unavailable,
                message: format!("shard {shard} connection failed mid-request"),
            });
            pending.outstanding -= 1;
            if pending.outstanding == 0 {
                self.finish_pending(pending_id);
            }
        }
    }

    /// Redials dead upstream connections on a throttle. The connect is
    /// blocking but local-fleet-fast; a dead host is bounded by the OS
    /// connect timeout and the redial interval keeps it rare.
    fn redial_dead_upstreams(&mut self) {
        for idx in 0..self.upstreams.len() {
            if self.upstreams[idx].conn.is_some()
                || self.upstreams[idx].last_attempt.elapsed() < self.config.redial_interval
            {
                continue;
            }
            self.upstreams[idx].last_attempt = Instant::now();
            let endpoint = self.upstreams[idx].endpoint.clone();
            let Ok(conn) = connect_upstream(&endpoint) else {
                continue;
            };
            if conn.set_nonblocking(true).is_err() {
                continue;
            }
            let token = UPSTREAM_BIT | idx as u64;
            if self
                .poller
                .register(conn.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            let up = &mut self.upstreams[idx];
            up.conn = Some(conn);
            up.registered = Interest::READABLE;
        }
    }

    // ---- completions and deadlines ----------------------------------

    fn drain_completions(&mut self, draining: bool) {
        loop {
            let completion = {
                let mut queue = self.completions.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            let Some(completion) = completion else { break };
            let Some(slot) = self.live_slot(completion.token) else {
                continue;
            };
            let conn = self.slab[slot].as_mut().expect("live slot");
            if !conn.in_flight {
                continue; // stale completion for a recycled slot
            }
            conn.in_flight = false;
            conn.write_buf.queue_frame(&completion.payload);
            if draining {
                conn.close_after_flush = true;
            }
            self.pump_client(slot, draining);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.slab.len() {
            let expired = matches!(
                &self.slab[slot],
                Some(conn) if conn.deadline.is_some_and(|d| d <= now)
            );
            if !expired {
                continue;
            }
            self.counters
                .deadline_closes
                .fetch_add(1, Ordering::Relaxed);
            self.disarm_deadline(slot);
            let conn = self.slab[slot].as_mut().expect("live slot");
            conn.write_buf.queue_response(&Response::Error(ErrorReply {
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "frame not completed within {:?}; closing",
                    self.config.frame_deadline
                ),
            }));
            let conn = self.slab[slot].as_mut().expect("live slot");
            let _ = conn.write_buf.flush(&mut conn.stream);
            self.close_client(slot);
        }
    }
}

/// Every vertex id a request's answer needs: endpoints plus the fault
/// elements that survive [`WireFaults::to_fault_set`] (so a self-loop
/// fault edge is dropped here exactly as the single-process server
/// drops it). Sorted and deduplicated.
fn needed_ids(request: &PlannedRequest) -> Vec<u32> {
    let mut ids = Vec::new();
    let mut push_query = |s: u32, t: u32, faults: &WireFaults| {
        ids.push(s);
        ids.push(t);
        let fault_set = faults.to_fault_set();
        ids.extend(fault_set.vertices().map(NodeId::raw));
        for e in fault_set.edges() {
            ids.push(e.lo().raw());
            ids.push(e.hi().raw());
        }
    };
    match request {
        PlannedRequest::Query { s, t, faults } => push_query(*s, *t, faults),
        PlannedRequest::Batch(items) => {
            for (s, t, faults) in items {
                push_query(*s, *t, faults);
            }
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Decodes every gathered label once, validating ownership and internal
/// consistency — a shard that returns bytes for the wrong vertex or a
/// corrupt label is a typed `Internal` error, never a wrong answer.
fn decode_gathered(
    labels: &HashMap<u32, (Vec<u8>, u32)>,
    n: usize,
    varints: &mut VarintScratch,
) -> Result<HashMap<u32, Label>, Response> {
    let mut decoded = HashMap::with_capacity(labels.len());
    for (&v, (bytes, bit_len)) in labels {
        let label = match codec::decode_with(bytes, *bit_len as usize, n, varints) {
            Ok(l) => l,
            Err(e) => {
                return Err(Response::Error(ErrorReply {
                    code: ErrorCode::Internal,
                    message: format!("label for vertex {v} failed to decode: {e}"),
                }));
            }
        };
        if label.owner != NodeId::new(v) || label.validate().is_err() {
            return Err(Response::Error(ErrorReply {
                code: ErrorCode::Internal,
                message: format!("shard returned an inconsistent label for vertex {v}"),
            }));
        }
        decoded.insert(v, label);
    }
    Ok(decoded)
}

/// Answers one (s, t, F) against the decoded label map — the same
/// [`query_with_scratch`] call, fed the same labels in the same
/// [`QueryLabels`] order as the single-process server, so the answer is
/// bit-identical.
fn answer_one(
    s: u32,
    t: u32,
    faults: &WireFaults,
    decoded: &HashMap<u32, Label>,
    params: &SchemeParams,
    scratch: &mut DecodeScratch,
) -> Result<fsdl_labels::QueryAnswer, Response> {
    let missing = |v: u32| {
        Response::Error(ErrorReply {
            code: ErrorCode::Internal,
            message: format!("gathered label set is missing vertex {v}"),
        })
    };
    let source = decoded.get(&s).ok_or_else(|| missing(s))?;
    let target = decoded.get(&t).ok_or_else(|| missing(t))?;
    let fault_set = faults.to_fault_set();
    let mut fault_vertices = Vec::with_capacity(fault_set.len());
    for v in fault_set.vertices() {
        fault_vertices.push(decoded.get(&v.raw()).ok_or_else(|| missing(v.raw()))?);
    }
    let mut fault_edges = Vec::new();
    for e in fault_set.edges() {
        let a = decoded
            .get(&e.lo().raw())
            .ok_or_else(|| missing(e.lo().raw()))?;
        let b = decoded
            .get(&e.hi().raw())
            .ok_or_else(|| missing(e.hi().raw()))?;
        fault_edges.push((a, b));
    }
    let query_labels = QueryLabels {
        fault_vertices,
        fault_edges,
    };
    Ok(query_with_scratch(
        params,
        source,
        target,
        &query_labels,
        scratch,
    ))
}

fn sat_u32(v: usize) -> u32 {
    v.try_into().unwrap_or(u32::MAX)
}

/// The worker-side terminal: decode the gathered labels, answer every
/// query in the frame, encode the reply.
fn compute_answer(
    job: &ComputeJob,
    params: &SchemeParams,
    counters: &Counters,
    scratch: &mut DecodeScratch,
    varints: &mut VarintScratch,
) -> Response {
    let decoded = match decode_gathered(&job.labels, params.n(), varints) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    match &job.request {
        PlannedRequest::Query { s, t, faults } => {
            match answer_one(*s, *t, faults, &decoded, params, scratch) {
                Ok(answer) => {
                    counters.queries.fetch_add(1, Ordering::Relaxed);
                    Response::Query(QueryReply {
                        distance: answer.distance.raw(),
                        sketch_vertices: sat_u32(answer.sketch_vertices),
                        sketch_edges: sat_u32(answer.sketch_edges),
                        path: answer.path.iter().map(|v| v.raw()).collect(),
                    })
                }
                Err(resp) => resp,
            }
        }
        PlannedRequest::Batch(items) => {
            let mut out = Vec::with_capacity(items.len());
            for (s, t, faults) in items {
                match answer_one(*s, *t, faults, &decoded, params, scratch) {
                    Ok(answer) => out.push(BatchItem {
                        distance: answer.distance.raw(),
                        sketch_vertices: sat_u32(answer.sketch_vertices),
                        sketch_edges: sat_u32(answer.sketch_edges),
                    }),
                    Err(resp) => return resp,
                }
            }
            counters
                .batch_queries
                .fetch_add(out.len() as u64, Ordering::Relaxed);
            Response::Batch(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_tokens_never_enter_the_upstream_namespace() {
        // Even a wrapped generation at the highest slot keeps bit 63
        // clear, so no client token can route to an upstream, the
        // listener, or the wake pipe.
        let mut generation = u32::MAX - 3;
        for _ in 0..8 {
            let token = client_token(&mut generation, 0xFFFF_FFFF);
            assert_eq!(token & UPSTREAM_BIT, 0);
            assert_ne!(token, LISTENER_TOKEN);
            assert_ne!(token, WAKE_TOKEN);
        }
    }

    #[test]
    fn client_token_same_slot_reuse_always_differs() {
        let mut generation = 0x7FFF_FFFE; // about to wrap the 31-bit mask
        let first = client_token(&mut generation, 42);
        let second = client_token(&mut generation, 42);
        let third = client_token(&mut generation, 42);
        assert_ne!(first, second);
        assert_ne!(second, third);
        assert_eq!(first & 0xFFFF_FFFF, 42);
        assert_eq!(second & 0xFFFF_FFFF, 42);
    }

    #[test]
    fn needed_ids_dedups_and_follows_fault_set_filtering() {
        let faults = WireFaults {
            vertices: vec![7, 3, 7],
            edges: vec![(5, 5), (2, 9)], // (5,5) is a self-loop: dropped
        };
        let ids = needed_ids(&PlannedRequest::Query { s: 3, t: 9, faults });
        assert_eq!(ids, vec![2, 3, 7, 9]);
    }

    #[test]
    fn needed_ids_unions_batch_items() {
        let items = vec![
            (0, 1, WireFaults::empty()),
            (
                1,
                2,
                WireFaults {
                    vertices: vec![4],
                    edges: vec![],
                },
            ),
        ];
        let ids = needed_ids(&PlannedRequest::Batch(items));
        assert_eq!(ids, vec![0, 1, 2, 4]);
    }
}
