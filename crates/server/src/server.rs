//! The long-running oracle server: readiness-driven event loop + worker
//! pool.
//!
//! ## Threading model
//!
//! One event loop (the caller of [`Server::run`]) owns *every* socket —
//! the listener and all accepted connections, all nonblocking — through
//! an [`fsdl_reactor::Poller`] (raw `epoll` on Linux, `poll(2)`
//! elsewhere). Each connection carries a
//! [`protocol::FrameAssembler`] that reassembles length-prefixed frames
//! from whatever byte chunks the kernel delivers and a
//! [`protocol::WriteBuffer`] that absorbs replies a full send buffer
//! cannot take yet. Only *complete* request frames are handed to the
//! worker pool, so a thousand idle keep-alive connections and a client
//! that drips one header byte per second cost the workers nothing —
//! the defect this design replaces parked one blocking worker per
//! connection, so `workers + 1` idle clients starved all real traffic.
//!
//! Workers receive complete frames over a channel, decode and dispatch
//! them, and push the encoded reply to a completion queue, waking the
//! event loop through a self-pipe. Each worker owns one
//! [`DecodeScratch`] for its entire lifetime, so the zero-allocation
//! decode fast path survives the network hop: after a few requests
//! every buffer a query needs is already warm. The pool size defaults
//! to [`fsdl_nets::parallel::background_workers`] (available
//! parallelism minus the event-loop thread, never below one), asserted
//! at startup so a misconfigured host can never end up with zero
//! serving workers.
//!
//! ## Backpressure and buffer ownership
//!
//! All buffers live on the event-loop side; workers only ever see one
//! owned frame at a time. A connection has at most one frame in flight:
//! while a worker holds its frame the event loop stops watching the
//! socket for readability, so a client that pipelines faster than the
//! engine answers is throttled by TCP itself and buffer growth per
//! connection is bounded by one readiness burst.
//!
//! ## Failure containment
//!
//! A malformed payload gets a typed [`Response::Error`] on the same
//! connection and the connection keeps serving; a broken *frame* (length
//! header past the cap) gets a final typed error and closes only that
//! connection. A connection that starts a frame and stalls past
//! [`ServerConfig::frame_deadline`] (a slow-loris client) gets a typed
//! [`ErrorCode::DeadlineExceeded`] reply, one flush attempt, and a
//! close, counted in [`ServeReport::deadline_closes`]. Nothing in the
//! serving path panics on untrusted input — the decode layer is the
//! panic-free path proven by the `labels::corrupt` harnesses.
//!
//! ## Shutdown
//!
//! A `shutdown` frame (or [`ShutdownHandle::signal`]) flips a shared
//! flag. The event loop deregisters the listener, stops dispatching
//! buffered frames, lets in-flight requests finish and their replies
//! flush, closes idle connections immediately, and force-closes
//! stragglers after one frame deadline. In dynamic mode the oracle then
//! drains any background rebuild before [`Server::run`] returns, so the
//! WAL and store are consistent on exit.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::fs::FileTypeExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use fsdl_graph::NodeId;
use fsdl_labels::partition::ShardStore;
use fsdl_labels::{DecodeScratch, DynamicOracle};
use fsdl_reactor::{Interest, Poller};
use fsdl_routing::Network;

use crate::protocol::{
    self, BatchItem, ErrorCode, ErrorReply, FrameError, FrameStep, LabelBytes, LabelFetchReply,
    QueryReply, Request, Response, RouteReply, StatsReply, UpdateOp, WireFaults,
};

/// Where a server listens or a client connects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 = auto: available parallelism minus the
    /// event-loop thread, never below 1).
    pub workers: usize,
    /// Frame payload ceiling in bytes.
    pub max_frame: u32,
    /// Upper bound on how long the event loop sleeps when nothing is
    /// ready — the latency ceiling for noticing an out-of-band
    /// [`ShutdownHandle::signal`].
    pub poll_interval: Duration,
    /// How long a connection may hold a *partial* frame before it is
    /// closed as a slow-loris suspect; also the grace period stragglers
    /// get to flush replies during shutdown drain.
    pub frame_deadline: Duration,
    /// Soft byte budget on encoded label bytes per label-fetch reply:
    /// replies carry the longest request prefix that fits (always at
    /// least one label). Lowering it forces short replies, which tests
    /// use to exercise tail re-requests on small graphs.
    pub label_fetch_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_frame: protocol::MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            frame_deadline: Duration::from_secs(10),
            label_fetch_budget: protocol::LABEL_FETCH_BYTE_BUDGET,
        }
    }
}

/// What the server serves from: a static oracle (wrapped in its routing
/// network so `route` frames work) or a durable dynamic oracle.
#[derive(Clone)]
pub enum ServeEngine {
    /// Immutable labels; `query`/`batch`/`route` with per-request
    /// forbidden sets, `update` rejected as [`ErrorCode::UnsupportedInMode`].
    Static(Arc<Network>),
    /// A dynamic oracle: `update` applies durable updates, `query`
    /// answers under the *current* fault set (per-query forbidden sets
    /// are rejected — the dynamic oracle's fault set is server state).
    Dynamic(Arc<RwLock<DynamicOracle>>),
    /// One shard of a partitioned label plane: serves only `label-fetch`
    /// (raw encoded labels by global id) and `stats`/`shutdown`; queries
    /// belong at the router, which holds the full partition plan.
    Shard(Arc<ShardStore>),
}

impl ServeEngine {
    /// Wraps a static oracle.
    pub fn from_network(network: Network) -> Self {
        ServeEngine::Static(Arc::new(network))
    }

    /// Wraps a dynamic oracle.
    pub fn from_dynamic(oracle: DynamicOracle) -> Self {
        ServeEngine::Dynamic(Arc::new(RwLock::new(oracle)))
    }

    /// Wraps one shard's store.
    pub fn from_shard(store: ShardStore) -> Self {
        ServeEngine::Shard(Arc::new(store))
    }

    fn vertices(&self) -> u64 {
        match self {
            ServeEngine::Static(net) => net.oracle().labeling().graph().num_vertices() as u64,
            ServeEngine::Dynamic(dyn_oracle) => read_lock(dyn_oracle).num_vertices() as u64,
            // The *global* id space: a shard answers for the whole graph's
            // ids even though it holds a slice of the labels.
            ServeEngine::Shard(store) => store.total_vertices(),
        }
    }
}

/// Recovers a read guard even if a writer panicked (the serving path must
/// outlive any one request's failure).
fn read_lock(lock: &RwLock<DynamicOracle>) -> std::sync::RwLockReadGuard<'_, DynamicOracle> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(lock: &RwLock<DynamicOracle>) -> std::sync::RwLockWriteGuard<'_, DynamicOracle> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Shared atomic counters, snapshotted into [`StatsReply`] frames and the
/// final [`ServeReport`].
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    routes: AtomicU64,
    updates: AtomicU64,
    protocol_errors: AtomicU64,
    deadline_closes: AtomicU64,
    label_fetches: AtomicU64,
}

/// Totals for one [`Server::run`] lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Single queries answered.
    pub queries: u64,
    /// Queries answered inside batch frames.
    pub batch_queries: u64,
    /// Routes computed.
    pub routes: u64,
    /// Updates applied.
    pub updates: u64,
    /// Typed protocol errors answered.
    pub protocol_errors: u64,
    /// Connections closed for stalling mid-frame past the frame
    /// deadline (slow-loris protection).
    pub deadline_closes: u64,
    /// Label-fetch requests answered (shard mode).
    pub label_fetches: u64,
}

/// Signals a running server to drain and exit (the out-of-band
/// alternative to a `shutdown` frame).
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub(crate) fn new(flag: Arc<AtomicBool>) -> ShutdownHandle {
        ShutdownHandle(flag)
    }

    /// Requests shutdown; idempotent.
    pub fn signal(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

pub(crate) enum BoundListener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl BoundListener {
    pub(crate) fn as_raw_fd(&self) -> RawFd {
        match self {
            BoundListener::Tcp(l) => l.as_raw_fd(),
            BoundListener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

/// One accepted connection, unified over transports.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }
}

impl AsRawFd for Conn {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The poller token of the listener socket.
pub(crate) const LISTENER_TOKEN: u64 = u64::MAX;
/// The poller token of the worker-completion wake pipe.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX - 1;

/// Composes the next `(generation << 32) | slot` connection token,
/// advancing (and wrapping) the generation counter. Skips any generation
/// whose composed token would collide with [`LISTENER_TOKEN`] or
/// [`WAKE_TOKEN`] — a wrapped generation at a very high slot index could
/// otherwise mint a connection token the event loop routes to the
/// listener or the wake pipe. Same-slot reuse always changes the token
/// (the generation strictly advances), and distinct slots always differ
/// in the low 32 bits, so a live connection can never be aliased.
pub(crate) fn next_token(next_generation: &mut u32, slot: usize) -> u64 {
    loop {
        *next_generation = next_generation.wrapping_add(1);
        let token = (u64::from(*next_generation) << 32) | slot as u64;
        if token != LISTENER_TOKEN && token != WAKE_TOKEN {
            return token;
        }
    }
}

/// Per-connection state, owned by the event loop.
struct Connection {
    stream: Conn,
    assembler: protocol::FrameAssembler,
    write_buf: protocol::WriteBuffer,
    /// `(generation << 32) | slot`: stale completions for a recycled
    /// slot carry the old generation and are dropped.
    token: u64,
    /// A frame is at a worker; readability is not watched meanwhile.
    in_flight: bool,
    /// The peer sent EOF; buffered complete frames are still served.
    peer_closed: bool,
    /// Close as soon as the write buffer drains (fatal frame error,
    /// deadline expiry, shutdown ack).
    close_after_flush: bool,
    /// Armed while a *partial* frame sits in the assembler; expiry is a
    /// slow-loris close.
    deadline: Option<Instant>,
    /// The interest currently registered with the poller.
    registered: Interest,
}

impl Connection {
    /// The readiness this connection wants right now.
    fn desired_interest(&self, draining: bool) -> Interest {
        Interest {
            readable: !self.in_flight && !self.close_after_flush && !self.peer_closed && !draining,
            writable: !self.write_buf.is_empty(),
        }
    }
}

/// A complete request frame on its way to a worker.
struct Job {
    token: u64,
    frame: Vec<u8>,
}

/// An encoded reply on its way back from a worker.
struct Completion {
    token: u64,
    /// Encoded reply payload (frame header added by the write buffer).
    payload: Vec<u8>,
    /// The reply is the `shutdown` ack: flip the flag and close after
    /// the ack flushes.
    is_shutdown: bool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: BoundListener,
    engine: ServeEngine,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
}

impl Server {
    /// Binds a listener at `endpoint` and sets up the reactor (poller +
    /// worker wake pipe). For unix endpoints a stale socket file from a
    /// previous run is removed first; the file is removed again when
    /// [`Server::run`] returns.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor-setup errors.
    pub fn bind(
        endpoint: &Endpoint,
        engine: ServeEngine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                BoundListener::Tcp(l)
            }
            Endpoint::Unix(path) => {
                // A dead server leaves its socket file behind; binding over
                // it is the expected restart path. Only ever remove sockets.
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    if meta.file_type().is_socket() {
                        std::fs::remove_file(path)?;
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                BoundListener::Unix(l, path.clone())
            }
        };
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READABLE)?;
        Ok(Server {
            listener,
            engine,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            poller,
            wake_rx,
            wake_tx: Arc::new(wake_tx),
        })
    }

    /// The endpoint actually bound (resolves port 0 to the ephemeral
    /// port, so tests can bind `127.0.0.1:0` and connect back).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_endpoint(&self) -> std::io::Result<Endpoint> {
        Ok(match &self.listener {
            BoundListener::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Endpoint::Tcp(addr.to_string())
            }
            BoundListener::Unix(_, path) => Endpoint::Unix(path.clone()),
        })
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Resolves the worker-pool size for this config: `workers == 0`
    /// reserves one core for the event-loop thread via
    /// [`fsdl_nets::parallel::background_workers`]. Guaranteed `>= 1` on
    /// every host, single-core included — asserted, because a zero-worker
    /// pool would accept connections and serve nothing.
    pub fn resolved_workers(&self) -> usize {
        let workers = if self.config.workers == 0 {
            // Cap irrelevant here (usize::MAX jobs): we want avail - 1.
            fsdl_nets::parallel::background_workers(usize::MAX)
        } else {
            self.config.workers
        };
        assert!(
            workers >= 1,
            "server worker pool must keep at least one worker after reserving the event loop"
        );
        workers
    }

    /// Runs the event loop until shutdown, then drains and returns the
    /// totals. Blocks the calling thread (spawn it for in-process use).
    pub fn run(self) -> ServeReport {
        let workers = self.resolved_workers();
        let counters = Arc::new(Counters::default());
        let shutdown = Arc::clone(&self.shutdown);
        let (job_tx, job_rx): (Sender<Job>, Receiver<Job>) = std::sync::mpsc::channel();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));

        let Server {
            listener,
            engine,
            config,
            poller,
            wake_rx,
            wake_tx,
            ..
        } = self;

        let label_fetch_budget = config.label_fetch_budget;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let engine = engine.clone();
                let counters = Arc::clone(&counters);
                let completions = Arc::clone(&completions);
                let wake_tx = Arc::clone(&wake_tx);
                scope.spawn(move || {
                    // One scratch per worker, reused across every request
                    // of every connection this worker ever serves.
                    let mut scratch = DecodeScratch::new();
                    loop {
                        // Holding the recv lock only while waiting keeps
                        // hand-off cheap; a closed channel means the event
                        // loop is gone and the queue is drained.
                        let job = {
                            let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(job) = job else { break };
                        let response = match Request::decode(&job.frame) {
                            Err(wire_err) => Response::Error(ErrorReply {
                                code: wire_err.code(),
                                message: wire_err.to_string(),
                            }),
                            Ok(request) => handle_request(
                                request,
                                &engine,
                                &counters,
                                &mut scratch,
                                label_fetch_budget,
                            ),
                        };
                        if matches!(response, Response::Error(_)) {
                            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        let is_shutdown = matches!(response, Response::Shutdown);
                        let mut payload = Vec::new();
                        response.encode(&mut payload);
                        completions
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back(Completion {
                                token: job.token,
                                payload,
                                is_shutdown,
                            });
                        // A full pipe already guarantees a pending wakeup.
                        let _ = (&*wake_tx).write(&[1]);
                    }
                });
            }

            let mut reactor = EventLoop {
                poller,
                listener: &listener,
                wake_rx: &wake_rx,
                config: &config,
                counters: &counters,
                shutdown: &shutdown,
                job_tx,
                completions: &completions,
                slab: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                armed_deadlines: 0,
                open: 0,
            };
            reactor.run();
            // `job_tx` dropped with the event loop: workers drain the
            // queue and exit, the scope joins them.
        });

        // Drain any background rebuild so the store and WAL are
        // consistent before the process can exit.
        if let ServeEngine::Dynamic(dyn_oracle) = &engine {
            read_lock(dyn_oracle).wait_for_rebuild();
        }
        if let BoundListener::Unix(_, path) = &listener {
            let _ = std::fs::remove_file(path);
        }

        ServeReport {
            connections: counters.connections.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            batch_queries: counters.batch_queries.load(Ordering::Relaxed),
            routes: counters.routes.load(Ordering::Relaxed),
            updates: counters.updates.load(Ordering::Relaxed),
            protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
            deadline_closes: counters.deadline_closes.load(Ordering::Relaxed),
            label_fetches: counters.label_fetches.load(Ordering::Relaxed),
        }
    }
}

/// The readiness-driven core of [`Server::run`]: owns the poller, the
/// connection slab, and all per-connection buffers.
struct EventLoop<'a> {
    poller: Poller,
    listener: &'a BoundListener,
    wake_rx: &'a UnixStream,
    config: &'a ServerConfig,
    counters: &'a Counters,
    shutdown: &'a AtomicBool,
    job_tx: Sender<Job>,
    completions: &'a Mutex<VecDeque<Completion>>,
    /// Slot-indexed connections; tokens carry a generation so events and
    /// completions for a recycled slot are recognized as stale.
    slab: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_generation: u32,
    /// How many live connections have a frame deadline armed; deadline
    /// scans are skipped entirely while this is zero, so idle fleets
    /// cost nothing per tick.
    armed_deadlines: usize,
    open: usize,
}

impl EventLoop<'_> {
    fn run(&mut self) {
        let mut events = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            if !draining && self.shutdown.load(Ordering::SeqCst) {
                draining = true;
                drain_deadline = Instant::now() + self.config.frame_deadline;
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                self.close_quiescent();
            }
            if draining {
                if self.open == 0 {
                    break;
                }
                if Instant::now() >= drain_deadline {
                    // Stragglers kept a reply unflushed or a worker busy
                    // for a whole frame deadline; cut them loose.
                    self.close_all();
                    break;
                }
            }

            let timeout = self.wait_timeout(draining.then_some(drain_deadline));
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // Poller failure is unrecoverable; drain like a listener
                // death rather than spinning.
                self.shutdown.store(true, Ordering::SeqCst);
                continue;
            }
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN if !draining => self.accept_ready(),
                    LISTENER_TOKEN => {}
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    token => self.connection_ready(token, ev.writable, draining),
                }
            }
            // Completions are drained every tick (not only on wake
            // events): the wake byte can race the queue push, and a
            // mutex peek is cheap.
            self.drain_completions(draining);
            if self.armed_deadlines > 0 && !draining {
                self.expire_deadlines();
            }
        }
    }

    /// The poller timeout: the poll interval (shutdown-flag latency
    /// ceiling), tightened to the nearest armed frame deadline or the
    /// drain deadline.
    fn wait_timeout(&self, drain_deadline: Option<Instant>) -> Duration {
        let mut timeout = self.config.poll_interval;
        let now = Instant::now();
        if self.armed_deadlines > 0 {
            for conn in self.slab.iter().flatten() {
                if let Some(d) = conn.deadline {
                    timeout = timeout.min(d.saturating_duration_since(now));
                }
            }
        }
        if let Some(d) = drain_deadline {
            timeout = timeout.min(d.saturating_duration_since(now));
        }
        timeout
    }

    /// Accepts until the listener would block; each new connection is
    /// made nonblocking and registered for readability.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener {
                BoundListener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                BoundListener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.counters.connections.fetch_add(1, Ordering::Relaxed);
                    self.insert_connection(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Listener failure: drain and exit rather than
                    // spinning on a dead socket.
                    self.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
    }

    fn insert_connection(&mut self, conn: Conn) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let token = next_token(&mut self.next_generation, slot);
        let fd = conn.as_raw_fd();
        let connection = Connection {
            stream: conn,
            assembler: protocol::FrameAssembler::new(),
            write_buf: protocol::WriteBuffer::new(),
            token,
            in_flight: false,
            peer_closed: false,
            close_after_flush: false,
            deadline: None,
            registered: Interest::READABLE,
        };
        if self.poller.register(fd, token, Interest::READABLE).is_err() {
            // Out of poller capacity (EMFILE-like): drop the connection;
            // the slot goes back unused.
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(connection);
        self.open += 1;
    }

    /// Resolves a token to its slot, ignoring stale generations.
    fn live_slot(&self, token: u64) -> Option<usize> {
        let slot = (token & 0xFFFF_FFFF) as usize;
        match self.slab.get(slot) {
            Some(Some(conn)) if conn.token == token => Some(slot),
            _ => None,
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.slab[slot].take() {
            if conn.deadline.is_some() {
                self.armed_deadlines -= 1;
            }
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.open -= 1;
            // `conn` drops here, closing the socket after deregistration.
        }
    }

    /// Closes every connection with no frame at a worker and nothing
    /// left to flush (the shutdown fast path).
    fn close_quiescent(&mut self) {
        for slot in 0..self.slab.len() {
            let quiescent = matches!(
                &self.slab[slot],
                Some(conn) if !conn.in_flight && conn.write_buf.is_empty()
            );
            if quiescent {
                self.close(slot);
            }
        }
    }

    fn close_all(&mut self) {
        for slot in 0..self.slab.len() {
            self.close(slot);
        }
    }

    /// Empties the self-pipe; the bytes carry no payload, the
    /// completions queue is the source of truth.
    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 256];
        let mut pipe = self.wake_rx; // `&UnixStream` implements `Read`
        loop {
            match pipe.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    /// Handles readiness on one connection: flush pending writes, read
    /// until the socket blocks, then try to dispatch a frame.
    fn connection_ready(&mut self, token: u64, writable: bool, draining: bool) {
        let Some(slot) = self.live_slot(token) else {
            return;
        };
        if writable && !self.flush(slot) {
            return;
        }
        let conn = self.slab[slot].as_mut().expect("live slot");
        if !conn.peer_closed && !conn.close_after_flush {
            loop {
                match conn.assembler.read_from(&mut conn.stream) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(slot);
                        return;
                    }
                }
            }
        }
        self.pump(slot, draining);
    }

    /// Tries to move one buffered frame toward a worker and settles the
    /// connection's deadline, interest, and close state.
    fn pump(&mut self, slot: usize, draining: bool) {
        let conn = self.slab[slot].as_mut().expect("live slot");
        if !conn.in_flight && !conn.close_after_flush && !draining {
            match conn.assembler.next_frame(self.config.max_frame) {
                FrameStep::Frame(payload) => {
                    let job = Job {
                        token: conn.token,
                        frame: payload.to_vec(),
                    };
                    conn.in_flight = true;
                    self.disarm_deadline(slot);
                    if self.job_tx.send(job).is_err() {
                        // Workers are gone; only reachable mid-teardown.
                        self.close(slot);
                        return;
                    }
                }
                FrameStep::Incomplete => {
                    let conn = self.slab[slot].as_mut().expect("live slot");
                    if conn.peer_closed {
                        // Clean EOF at a boundary or a torn frame; either
                        // way there is nothing left to serve.
                        if conn.write_buf.is_empty() {
                            self.close(slot);
                        } else {
                            conn.close_after_flush = true;
                        }
                        return;
                    }
                    if conn.assembler.buffered() > 0 {
                        // A partial frame is pending and no worker owes
                        // this connection a reply: the clock is on the
                        // client. Armed once — progress does not reset
                        // it, or a drip-feed would evade the deadline.
                        if conn.deadline.is_none() {
                            conn.deadline = Some(Instant::now() + self.config.frame_deadline);
                            self.armed_deadlines += 1;
                        }
                    } else {
                        self.disarm_deadline(slot);
                    }
                }
                FrameStep::Oversized { len, max } => {
                    // The length header itself is untrustworthy, so the
                    // stream cannot be re-synchronized: typed error, then
                    // close.
                    self.counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let message = FrameError::Oversized { len, max }.to_string();
                    conn.write_buf.queue_response(&Response::Error(ErrorReply {
                        code: ErrorCode::Oversized,
                        message,
                    }));
                    conn.close_after_flush = true;
                    self.disarm_deadline(slot);
                }
            }
        } else if draining && !conn.in_flight && conn.write_buf.is_empty() {
            self.close(slot);
            return;
        }
        if !self.flush(slot) {
            return;
        }
        self.update_interest(slot, draining);
    }

    fn disarm_deadline(&mut self, slot: usize) {
        let conn = self.slab[slot].as_mut().expect("live slot");
        if conn.deadline.take().is_some() {
            self.armed_deadlines -= 1;
        }
    }

    /// Flushes the write buffer; returns `false` when the connection was
    /// closed (fatal write error, or close-after-flush completed).
    fn flush(&mut self, slot: usize) -> bool {
        let conn = self.slab[slot].as_mut().expect("live slot");
        match conn.write_buf.flush(&mut conn.stream) {
            Ok(true) => {
                if conn.close_after_flush {
                    self.close(slot);
                    return false;
                }
                true
            }
            Ok(false) => true, // socket full; writable interest keeps it moving
            Err(_) => {
                self.close(slot);
                false
            }
        }
    }

    /// Reconciles the poller registration with the connection's state.
    fn update_interest(&mut self, slot: usize, draining: bool) {
        let conn = self.slab[slot].as_mut().expect("live slot");
        let desired = conn.desired_interest(draining);
        if desired != conn.registered {
            conn.registered = desired;
            let fd = conn.stream.as_raw_fd();
            let token = conn.token;
            if self.poller.modify(fd, token, desired).is_err() {
                self.close(slot);
            }
        }
    }

    /// Applies every queued worker reply to its connection.
    fn drain_completions(&mut self, draining: bool) {
        loop {
            let completion = {
                let mut queue = self.completions.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            let Some(completion) = completion else { break };
            if completion.is_shutdown {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            let Some(slot) = self.live_slot(completion.token) else {
                continue; // connection died while the worker was busy
            };
            let conn = self.slab[slot].as_mut().expect("live slot");
            if !conn.in_flight {
                // A completion can only be owed to a connection with a
                // frame at a worker; anything else is a stale token that
                // survived a slot recycle through a generation wrap.
                continue;
            }
            conn.in_flight = false;
            conn.write_buf.queue_frame(&completion.payload);
            if completion.is_shutdown || draining {
                conn.close_after_flush = true;
            }
            // The reply is queued; pump flushes it and, outside a drain,
            // dispatches the next buffered frame.
            self.pump(slot, draining);
        }
    }

    /// Closes every connection whose partial-frame deadline has passed:
    /// typed reply, one flush attempt, close.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.slab.len() {
            let expired = matches!(
                &self.slab[slot],
                Some(conn) if conn.deadline.is_some_and(|d| d <= now)
            );
            if !expired {
                continue;
            }
            self.counters
                .deadline_closes
                .fetch_add(1, Ordering::Relaxed);
            self.disarm_deadline(slot);
            let conn = self.slab[slot].as_mut().expect("live slot");
            conn.write_buf.queue_response(&Response::Error(ErrorReply {
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "frame not completed within {:?}; closing",
                    self.config.frame_deadline
                ),
            }));
            // One courtesy flush; a stalled sender that also stopped
            // reading does not get to park the reply here.
            let conn = self.slab[slot].as_mut().expect("live slot");
            let _ = conn.write_buf.flush(&mut conn.stream);
            self.close(slot);
        }
    }
}

fn error_reply(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error(ErrorReply {
        code,
        message: message.into(),
    })
}

/// Narrows a counter to its `u32` wire field, saturating to the
/// `u32::MAX` sentinel (see the protocol module doc) instead of silently
/// wrapping like a bare `as u32` cast would.
fn sat_u32(v: usize) -> u32 {
    v.try_into().unwrap_or(u32::MAX)
}

/// Dispatches one decoded request against the engine.
fn handle_request(
    request: Request,
    engine: &ServeEngine,
    counters: &Counters,
    scratch: &mut DecodeScratch,
    label_fetch_budget: usize,
) -> Response {
    match request {
        Request::Query { s, t, faults } => match engine {
            ServeEngine::Static(net) => {
                match net.oracle().try_query_with(
                    NodeId::new(s),
                    NodeId::new(t),
                    &faults.to_fault_set(),
                    scratch,
                ) {
                    Ok(answer) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        Response::Query(QueryReply {
                            distance: answer.distance.raw(),
                            sketch_vertices: sat_u32(answer.sketch_vertices),
                            sketch_edges: sat_u32(answer.sketch_edges),
                            path: answer.path.iter().map(|v| v.raw()).collect(),
                        })
                    }
                    Err(e) => error_reply(ErrorCode::BadRequest, e.to_string()),
                }
            }
            ServeEngine::Dynamic(dyn_oracle) => {
                if !faults.is_empty() {
                    return error_reply(
                        ErrorCode::UnsupportedInMode,
                        "dynamic mode serves the oracle's current fault set; \
                         send update frames instead of per-query faults",
                    );
                }
                let guard = read_lock(dyn_oracle);
                match guard.try_distance_with(NodeId::new(s), NodeId::new(t), scratch) {
                    Ok(d) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        Response::Query(QueryReply {
                            distance: d.raw(),
                            sketch_vertices: 0,
                            sketch_edges: 0,
                            path: Vec::new(),
                        })
                    }
                    Err(e) => error_reply(ErrorCode::BadRequest, e.to_string()),
                }
            }
            ServeEngine::Shard(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "a shard serves label-fetch only; send queries to the router",
            ),
        },
        Request::Batch(queries) => match engine {
            ServeEngine::Static(net) => {
                let mut items = Vec::with_capacity(queries.len());
                for (s, t, faults) in &queries {
                    match net.oracle().try_query_with(
                        NodeId::new(*s),
                        NodeId::new(*t),
                        &faults.to_fault_set(),
                        scratch,
                    ) {
                        Ok(answer) => items.push(BatchItem {
                            distance: answer.distance.raw(),
                            sketch_vertices: sat_u32(answer.sketch_vertices),
                            sketch_edges: sat_u32(answer.sketch_edges),
                        }),
                        Err(e) => {
                            return error_reply(
                                ErrorCode::BadRequest,
                                format!("batch item {}: {e}", items.len()),
                            );
                        }
                    }
                }
                counters
                    .batch_queries
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                Response::Batch(items)
            }
            ServeEngine::Dynamic(dyn_oracle) => {
                if queries.iter().any(|(_, _, f)| !f.is_empty()) {
                    return error_reply(
                        ErrorCode::UnsupportedInMode,
                        "dynamic mode serves the oracle's current fault set; \
                         send update frames instead of per-query faults",
                    );
                }
                let guard = read_lock(dyn_oracle);
                let mut items = Vec::with_capacity(queries.len());
                for (s, t, _) in &queries {
                    match guard.try_distance_with(NodeId::new(*s), NodeId::new(*t), scratch) {
                        Ok(d) => items.push(BatchItem {
                            distance: d.raw(),
                            sketch_vertices: 0,
                            sketch_edges: 0,
                        }),
                        Err(e) => {
                            return error_reply(
                                ErrorCode::BadRequest,
                                format!("batch item {}: {e}", items.len()),
                            );
                        }
                    }
                }
                counters
                    .batch_queries
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                Response::Batch(items)
            }
            ServeEngine::Shard(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "a shard serves label-fetch only; send queries to the router",
            ),
        },
        Request::Route { s, t, faults } => match engine {
            ServeEngine::Static(net) => {
                let g = net.oracle().labeling().graph();
                if s as usize >= g.num_vertices() || t as usize >= g.num_vertices() {
                    return error_reply(ErrorCode::BadRequest, "route endpoint out of range");
                }
                counters.routes.fetch_add(1, Ordering::Relaxed);
                match net.route(NodeId::new(s), NodeId::new(t), &faults.to_fault_set()) {
                    Ok(delivery) => Response::Route(RouteReply::Delivered {
                        hops: sat_u32(delivery.hops),
                        header_bits: sat_u32(delivery.header_bits),
                        path: delivery.path.iter().map(|v| v.raw()).collect(),
                    }),
                    Err(failure) => Response::Route(RouteReply::Failed(failure.to_string())),
                }
            }
            ServeEngine::Dynamic(_) | ServeEngine::Shard(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "route requires the static oracle (serve without --dynamic)",
            ),
        },
        Request::Update(update) => match engine {
            ServeEngine::Static(_) | ServeEngine::Shard(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "update requires a dynamic oracle (serve with --store and --dynamic)",
            ),
            ServeEngine::Dynamic(dyn_oracle) => {
                let mut guard = write_lock(dyn_oracle);
                let result = match update {
                    UpdateOp::DeleteVertex(v) => guard.delete_vertex(NodeId::new(v)),
                    UpdateOp::DeleteEdge(a, b) => guard.delete_edge(NodeId::new(a), NodeId::new(b)),
                    UpdateOp::RestoreVertex(v) => guard.restore_vertex(NodeId::new(v)),
                    UpdateOp::RestoreEdge(a, b) => {
                        guard.restore_edge(NodeId::new(a), NodeId::new(b))
                    }
                };
                match result {
                    Ok(()) => {
                        counters.updates.fetch_add(1, Ordering::Relaxed);
                        Response::Update {
                            active_faults: sat_u32(guard.current_faults().len()),
                        }
                    }
                    Err(e) => error_reply(ErrorCode::UpdateRejected, e.to_string()),
                }
            }
        },
        Request::Stats => {
            let (dynamic, active_faults) = match engine {
                ServeEngine::Static(_) | ServeEngine::Shard(_) => (0u8, 0u64),
                ServeEngine::Dynamic(dyn_oracle) => {
                    (1u8, read_lock(dyn_oracle).current_faults().len() as u64)
                }
            };
            Response::Stats(StatsReply {
                vertices: engine.vertices(),
                dynamic,
                active_faults,
                connections: counters.connections.load(Ordering::Relaxed),
                queries: counters.queries.load(Ordering::Relaxed),
                batch_queries: counters.batch_queries.load(Ordering::Relaxed),
                routes: counters.routes.load(Ordering::Relaxed),
                updates: counters.updates.load(Ordering::Relaxed),
                protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
                deadline_closes: counters.deadline_closes.load(Ordering::Relaxed),
                label_fetches: counters.label_fetches.load(Ordering::Relaxed),
            })
        }
        Request::Shutdown => Response::Shutdown,
        Request::LabelFetch { vertices } => match engine {
            ServeEngine::Shard(store) => {
                // Pack the longest request prefix under the byte budget
                // (but never an empty reply for a non-empty request):
                // labels are poly(1/eps, log n) bytes each, so an id
                // count alone bounds nothing. The caller re-requests the
                // unserved tail — see `LabelFetchReply`.
                let mut labels = Vec::with_capacity(vertices.len());
                let mut used = 0usize;
                for &v in &vertices {
                    let Some((bytes, bit_len)) = store.fetch(v) else {
                        return error_reply(
                            ErrorCode::BadRequest,
                            format!(
                                "shard {}/{} does not own vertex {v}",
                                store.shard(),
                                store.num_shards()
                            ),
                        );
                    };
                    if !labels.is_empty() && used.saturating_add(bytes.len()) > label_fetch_budget
                    {
                        break;
                    }
                    used += bytes.len();
                    labels.push(LabelBytes {
                        vertex: v,
                        bit_len: sat_u32(bit_len),
                        bytes: bytes.to_vec(),
                    });
                }
                counters.label_fetches.fetch_add(1, Ordering::Relaxed);
                let (epsilon_bits, c, n) = store.wire_params();
                Response::LabelFetch(LabelFetchReply {
                    generation: store.generation(),
                    epsilon_bits,
                    c,
                    vertices: n,
                    labels,
                })
            }
            ServeEngine::Static(net) => {
                // A single unsharded oracle is a valid 1-shard backend:
                // the router's differential tests lean on this.
                let oracle = net.oracle();
                let n = oracle.labeling().graph().num_vertices();
                let params = oracle.labeling().params();
                let mut labels = Vec::with_capacity(vertices.len());
                let mut used = 0usize;
                for &v in &vertices {
                    if v as usize >= n {
                        return error_reply(
                            ErrorCode::BadRequest,
                            format!("vertex {v} out of range for n={n}"),
                        );
                    }
                    match oracle.encoded_label(NodeId::new(v)) {
                        Ok((bytes, bit_len)) => {
                            if !labels.is_empty()
                                && used.saturating_add(bytes.len()) > label_fetch_budget
                            {
                                break;
                            }
                            used += bytes.len();
                            labels.push(LabelBytes {
                                vertex: v,
                                bit_len: sat_u32(bit_len),
                                bytes,
                            });
                        }
                        Err(e) => return error_reply(ErrorCode::Internal, e.to_string()),
                    }
                }
                counters.label_fetches.fetch_add(1, Ordering::Relaxed);
                Response::LabelFetch(LabelFetchReply {
                    generation: 0,
                    epsilon_bits: params.epsilon().to_bits(),
                    c: params.c(),
                    vertices: n as u64,
                    labels,
                })
            }
            ServeEngine::Dynamic(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "label-fetch serves immutable labels; the dynamic oracle re-encodes \
                 across generations and cannot be sharded",
            ),
        },
    }
}

/// Builds wire faults from raw parts (loadgen convenience).
pub fn wire_faults(vertices: Vec<u32>, edges: Vec<(u32, u32)>) -> WireFaults {
    WireFaults { vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_workers_is_at_least_one_everywhere() {
        // Auto sizing must survive a single-core host: background_workers
        // returns avail - 1 but never 0, and the assert in
        // resolved_workers pins the contract.
        let dir = std::env::temp_dir().join(format!("fsdl-srv-workers-{}", std::process::id()));
        let g = fsdl_graph::generators::cycle(8);
        let oracle = fsdl_labels::ForbiddenSetOracle::new(&g, 1.0);
        let server = Server::bind(
            &Endpoint::Unix(dir.with_extension("sock")),
            ServeEngine::from_network(Network::from_oracle(oracle)),
            ServerConfig::default(),
        )
        .expect("bind");
        assert!(server.resolved_workers() >= 1);
        let explicit = Server::bind(
            &Endpoint::Unix(dir.with_extension("sock2")),
            server.engine.clone(),
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        assert_eq!(explicit.resolved_workers(), 3);
        let _ = std::fs::remove_file(dir.with_extension("sock"));
        let _ = std::fs::remove_file(dir.with_extension("sock2"));
    }

    #[test]
    fn wrapped_generation_never_aliases_reserved_tokens() {
        // The only tokens live in the poller besides connections are the
        // listener and the wake pipe. A generation wrap at the extreme
        // slot indices would mint exactly those values without the guard.
        for slot in [0xFFFF_FFFEusize, 0xFFFF_FFFF] {
            let mut generation = u32::MAX - 1; // next_add lands on u32::MAX
            let token = next_token(&mut generation, slot);
            assert_ne!(token, LISTENER_TOKEN);
            assert_ne!(token, WAKE_TOKEN);
            // The guard advanced past the collision, not around it: the
            // very next token is a normal one too.
            let token2 = next_token(&mut generation, slot);
            assert_ne!(token2, LISTENER_TOKEN);
            assert_ne!(token2, WAKE_TOKEN);
            assert_ne!(token, token2);
        }
    }

    #[test]
    fn wrapped_generation_never_aliases_a_live_connection() {
        // Aliasing a *live* connection would need two equal tokens for
        // the same slot from different generations. The generation
        // strictly advances on every insert, so consecutive tokens for
        // one slot differ even across the u32 wrap; different slots
        // differ structurally in the low 32 bits.
        let slot = 7usize;
        let mut generation = u32::MAX; // wraps to 0 on the next insert
        let before_wrap = next_token(&mut generation, slot);
        let after_wrap = next_token(&mut generation, slot);
        assert_ne!(before_wrap, after_wrap);
        assert_eq!(before_wrap & 0xFFFF_FFFF, slot as u64);
        assert_eq!(after_wrap & 0xFFFF_FFFF, slot as u64);
        let other_slot = next_token(&mut generation, slot + 1);
        assert_ne!(other_slot & 0xFFFF_FFFF, slot as u64);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::Tcp("127.0.0.1:4000".into()).to_string(),
            "tcp://127.0.0.1:4000"
        );
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/x.sock")).to_string(),
            "unix:///tmp/x.sock"
        );
    }
}
