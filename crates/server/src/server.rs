//! The long-running oracle server: accept thread + worker pool.
//!
//! ## Threading model
//!
//! One accept thread (the caller of [`Server::run`]) polls a nonblocking
//! listener and feeds accepted connections to a fixed pool of worker
//! threads over a channel. Each worker owns one [`DecodeScratch`] for its
//! entire lifetime and serves one connection at a time to completion, so
//! the zero-allocation decode fast path survives the network hop: after a
//! few requests every buffer a query needs is already warm.
//!
//! The pool size defaults to [`fsdl_nets::parallel::background_workers`]
//! (available parallelism minus the accept thread, never below one) — the
//! same reservation discipline the background rebuilder uses, asserted at
//! startup so a misconfigured host can never end up with zero serving
//! workers.
//!
//! ## Failure containment
//!
//! A malformed payload gets a typed [`Response::Error`] on the same
//! connection and the connection keeps serving; a broken *frame* (length
//! header past the cap, torn payload) gets a final typed error and closes
//! only that connection. Nothing in the serving path panics on untrusted
//! input — the decode layer is the panic-free path proven by the
//! `labels::corrupt` harnesses.
//!
//! ## Shutdown
//!
//! A `shutdown` frame (or [`ShutdownHandle::signal`]) flips a shared
//! flag. The accept loop stops accepting, workers finish their in-flight
//! request, idle connections close at the next poll tick, and — in
//! dynamic mode — the oracle drains any background rebuild before
//! [`Server::run`] returns, so the WAL and store are consistent on exit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::fs::FileTypeExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use fsdl_graph::NodeId;
use fsdl_labels::{DecodeScratch, DynamicOracle};
use fsdl_routing::Network;

use crate::protocol::{
    self, BatchItem, ErrorCode, ErrorReply, FrameError, QueryReply, Request, Response, RouteReply,
    StatsReply, UpdateOp, WireFaults,
};

/// Where a server listens or a client connects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 = auto: available parallelism minus the accept
    /// thread, never below 1).
    pub workers: usize,
    /// Frame payload ceiling in bytes.
    pub max_frame: u32,
    /// How often idle workers and the accept loop check the shutdown
    /// flag.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_frame: protocol::MAX_FRAME,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What the server serves from: a static oracle (wrapped in its routing
/// network so `route` frames work) or a durable dynamic oracle.
#[derive(Clone)]
pub enum ServeEngine {
    /// Immutable labels; `query`/`batch`/`route` with per-request
    /// forbidden sets, `update` rejected as [`ErrorCode::UnsupportedInMode`].
    Static(Arc<Network>),
    /// A dynamic oracle: `update` applies durable updates, `query`
    /// answers under the *current* fault set (per-query forbidden sets
    /// are rejected — the dynamic oracle's fault set is server state).
    Dynamic(Arc<RwLock<DynamicOracle>>),
}

impl ServeEngine {
    /// Wraps a static oracle.
    pub fn from_network(network: Network) -> Self {
        ServeEngine::Static(Arc::new(network))
    }

    /// Wraps a dynamic oracle.
    pub fn from_dynamic(oracle: DynamicOracle) -> Self {
        ServeEngine::Dynamic(Arc::new(RwLock::new(oracle)))
    }

    fn vertices(&self) -> u64 {
        match self {
            ServeEngine::Static(net) => net.oracle().labeling().graph().num_vertices() as u64,
            ServeEngine::Dynamic(dyn_oracle) => read_lock(dyn_oracle).num_vertices() as u64,
        }
    }
}

/// Recovers a read guard even if a writer panicked (the serving path must
/// outlive any one request's failure).
fn read_lock(lock: &RwLock<DynamicOracle>) -> std::sync::RwLockReadGuard<'_, DynamicOracle> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(lock: &RwLock<DynamicOracle>) -> std::sync::RwLockWriteGuard<'_, DynamicOracle> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Shared atomic counters, snapshotted into [`StatsReply`] frames and the
/// final [`ServeReport`].
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    routes: AtomicU64,
    updates: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Totals for one [`Server::run`] lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Single queries answered.
    pub queries: u64,
    /// Queries answered inside batch frames.
    pub batch_queries: u64,
    /// Routes computed.
    pub routes: u64,
    /// Updates applied.
    pub updates: u64,
    /// Typed protocol errors answered.
    pub protocol_errors: u64,
}

/// Signals a running server to drain and exit (the out-of-band
/// alternative to a `shutdown` frame).
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown; idempotent.
    pub fn signal(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

enum BoundListener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// One accepted connection, unified over transports.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: BoundListener,
    engine: ServeEngine,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds a listener at `endpoint`. For unix endpoints a stale socket
    /// file from a previous run is removed first; the file is removed
    /// again when [`Server::run`] returns.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(
        endpoint: &Endpoint,
        engine: ServeEngine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                BoundListener::Tcp(l)
            }
            Endpoint::Unix(path) => {
                // A dead server leaves its socket file behind; binding over
                // it is the expected restart path. Only ever remove sockets.
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    if meta.file_type().is_socket() {
                        std::fs::remove_file(path)?;
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                BoundListener::Unix(l, path.clone())
            }
        };
        Ok(Server {
            listener,
            engine,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The endpoint actually bound (resolves port 0 to the ephemeral
    /// port, so tests can bind `127.0.0.1:0` and connect back).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_endpoint(&self) -> std::io::Result<Endpoint> {
        Ok(match &self.listener {
            BoundListener::Tcp(l) => {
                let addr: SocketAddr = l.local_addr()?;
                Endpoint::Tcp(addr.to_string())
            }
            BoundListener::Unix(_, path) => Endpoint::Unix(path.clone()),
        })
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Resolves the worker-pool size for this config: `workers == 0`
    /// reserves one core for the accept thread via
    /// [`fsdl_nets::parallel::background_workers`]. Guaranteed `>= 1` on
    /// every host, single-core included — asserted, because a zero-worker
    /// pool would accept connections and serve nothing.
    pub fn resolved_workers(&self) -> usize {
        let workers = if self.config.workers == 0 {
            // Cap irrelevant here (usize::MAX jobs): we want avail - 1.
            fsdl_nets::parallel::background_workers(usize::MAX)
        } else {
            self.config.workers
        };
        assert!(
            workers >= 1,
            "server worker pool must keep at least one worker after reserving the accept thread"
        );
        workers
    }

    /// Runs the accept loop until shutdown, then drains and returns the
    /// totals. Blocks the calling thread (spawn it for in-process use).
    pub fn run(self) -> ServeReport {
        let workers = self.resolved_workers();
        let counters = Arc::new(Counters::default());
        let shutdown = Arc::clone(&self.shutdown);
        let (tx, rx): (Sender<Conn>, Receiver<Conn>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let engine = self.engine.clone();
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                let config = self.config.clone();
                scope.spawn(move || {
                    // One scratch per worker, reused across every request
                    // of every connection this worker ever serves.
                    let mut scratch = DecodeScratch::new();
                    loop {
                        // Holding the recv lock only while waiting keeps
                        // hand-off cheap; a closed channel means the
                        // accept loop is gone and the queue is drained.
                        let conn = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv_timeout(config.poll_interval)
                        };
                        match conn {
                            Ok(conn) => {
                                serve_connection(
                                    conn,
                                    &engine,
                                    &counters,
                                    &shutdown,
                                    &config,
                                    &mut scratch,
                                );
                            }
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                if shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                });
            }

            // Accept loop (this thread).
            while !shutdown.load(Ordering::SeqCst) {
                let accepted = match &self.listener {
                    BoundListener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                    BoundListener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
                };
                match accepted {
                    Ok(conn) => {
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(self.config.poll_interval);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Listener failure: drain and exit rather than
                        // spinning on a dead socket.
                        shutdown.store(true, Ordering::SeqCst);
                    }
                }
            }
            drop(tx); // lets idle workers exit once the queue drains
        });

        // Drain any background rebuild so the store and WAL are
        // consistent before the process can exit.
        if let ServeEngine::Dynamic(dyn_oracle) = &self.engine {
            read_lock(dyn_oracle).wait_for_rebuild();
        }
        if let BoundListener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }

        ServeReport {
            connections: counters.connections.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            batch_queries: counters.batch_queries.load(Ordering::Relaxed),
            routes: counters.routes.load(Ordering::Relaxed),
            updates: counters.updates.load(Ordering::Relaxed),
            protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Serves one connection until EOF, a frame-layer error, or shutdown.
fn serve_connection(
    mut conn: Conn,
    engine: &ServeEngine,
    counters: &Counters,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    scratch: &mut DecodeScratch,
) {
    if conn.set_read_timeout(Some(config.poll_interval)).is_err() {
        return;
    }
    let mut frame = Vec::new();
    let mut out = Vec::new();
    loop {
        match read_frame_idle_aware(&mut conn, config.max_frame, &mut frame, shutdown) {
            FramePoll::Frame => {}
            FramePoll::Eof | FramePoll::Closed => return,
            FramePoll::ShuttingDown => return,
            FramePoll::Broken(err) => {
                // The stream can no longer be re-synchronized (the length
                // header itself is untrustworthy): answer with the typed
                // error, then close this connection only.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Error(ErrorReply {
                    code: ErrorCode::Oversized,
                    message: err,
                });
                let _ = protocol::send_response(&mut conn, &reply, &mut out);
                return;
            }
        }
        let response = match Request::decode(&frame) {
            Err(wire_err) => Response::Error(ErrorReply {
                code: wire_err.code(),
                message: wire_err.to_string(),
            }),
            Ok(request) => handle_request(request, engine, counters, scratch),
        };
        if matches!(response, Response::Error(_)) {
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
        let is_shutdown_ack = matches!(response, Response::Shutdown);
        if protocol::send_response(&mut conn, &response, &mut out).is_err() {
            return;
        }
        if is_shutdown_ack {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Outcome of polling for one frame on a connection with a read timeout.
enum FramePoll {
    /// A complete frame is in the buffer.
    Frame,
    /// Clean EOF at a frame boundary.
    Eof,
    /// The stream died (reset, torn frame).
    Closed,
    /// Shutdown was signaled while the connection was idle.
    ShuttingDown,
    /// The frame layer is broken (oversized length); message for the
    /// final typed reply.
    Broken(String),
}

/// Reads one frame from a stream whose read timeout is the poll
/// interval. A timeout *between* frames is idleness (check shutdown and
/// keep waiting); a timeout *inside* a frame just retries the read — the
/// frame is already in flight and the sender is trusted to finish it or
/// die, either of which ends the wait.
fn read_frame_idle_aware(
    conn: &mut Conn,
    max_frame: u32,
    frame: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> FramePoll {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match conn.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    FramePoll::Eof
                } else {
                    FramePoll::Closed
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if got == 0 && shutdown.load(Ordering::SeqCst) {
                    return FramePoll::ShuttingDown;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FramePoll::Closed,
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max_frame {
        return FramePoll::Broken(
            FrameError::Oversized {
                len,
                max: max_frame,
            }
            .to_string(),
        );
    }
    frame.resize(len as usize, 0);
    let mut filled = 0usize;
    while filled < frame.len() {
        match conn.read(&mut frame[filled..]) {
            Ok(0) => return FramePoll::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FramePoll::Closed,
        }
    }
    FramePoll::Frame
}

fn error_reply(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error(ErrorReply {
        code,
        message: message.into(),
    })
}

/// Dispatches one decoded request against the engine.
fn handle_request(
    request: Request,
    engine: &ServeEngine,
    counters: &Counters,
    scratch: &mut DecodeScratch,
) -> Response {
    match request {
        Request::Query { s, t, faults } => match engine {
            ServeEngine::Static(net) => {
                match net.oracle().try_query_with(
                    NodeId::new(s),
                    NodeId::new(t),
                    &faults.to_fault_set(),
                    scratch,
                ) {
                    Ok(answer) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        Response::Query(QueryReply {
                            distance: answer.distance.raw(),
                            sketch_vertices: answer.sketch_vertices as u32,
                            sketch_edges: answer.sketch_edges as u32,
                            path: answer.path.iter().map(|v| v.raw()).collect(),
                        })
                    }
                    Err(e) => error_reply(ErrorCode::BadRequest, e.to_string()),
                }
            }
            ServeEngine::Dynamic(dyn_oracle) => {
                if !faults.is_empty() {
                    return error_reply(
                        ErrorCode::UnsupportedInMode,
                        "dynamic mode serves the oracle's current fault set; \
                         send update frames instead of per-query faults",
                    );
                }
                let guard = read_lock(dyn_oracle);
                match guard.try_distance_with(NodeId::new(s), NodeId::new(t), scratch) {
                    Ok(d) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        Response::Query(QueryReply {
                            distance: d.raw(),
                            sketch_vertices: 0,
                            sketch_edges: 0,
                            path: Vec::new(),
                        })
                    }
                    Err(e) => error_reply(ErrorCode::BadRequest, e.to_string()),
                }
            }
        },
        Request::Batch(queries) => match engine {
            ServeEngine::Static(net) => {
                let mut items = Vec::with_capacity(queries.len());
                for (s, t, faults) in &queries {
                    match net.oracle().try_query_with(
                        NodeId::new(*s),
                        NodeId::new(*t),
                        &faults.to_fault_set(),
                        scratch,
                    ) {
                        Ok(answer) => items.push(BatchItem {
                            distance: answer.distance.raw(),
                            sketch_vertices: answer.sketch_vertices as u32,
                            sketch_edges: answer.sketch_edges as u32,
                        }),
                        Err(e) => {
                            return error_reply(
                                ErrorCode::BadRequest,
                                format!("batch item {}: {e}", items.len()),
                            );
                        }
                    }
                }
                counters
                    .batch_queries
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                Response::Batch(items)
            }
            ServeEngine::Dynamic(dyn_oracle) => {
                if queries.iter().any(|(_, _, f)| !f.is_empty()) {
                    return error_reply(
                        ErrorCode::UnsupportedInMode,
                        "dynamic mode serves the oracle's current fault set; \
                         send update frames instead of per-query faults",
                    );
                }
                let guard = read_lock(dyn_oracle);
                let mut items = Vec::with_capacity(queries.len());
                for (s, t, _) in &queries {
                    match guard.try_distance_with(NodeId::new(*s), NodeId::new(*t), scratch) {
                        Ok(d) => items.push(BatchItem {
                            distance: d.raw(),
                            sketch_vertices: 0,
                            sketch_edges: 0,
                        }),
                        Err(e) => {
                            return error_reply(
                                ErrorCode::BadRequest,
                                format!("batch item {}: {e}", items.len()),
                            );
                        }
                    }
                }
                counters
                    .batch_queries
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                Response::Batch(items)
            }
        },
        Request::Route { s, t, faults } => match engine {
            ServeEngine::Static(net) => {
                let g = net.oracle().labeling().graph();
                if s as usize >= g.num_vertices() || t as usize >= g.num_vertices() {
                    return error_reply(ErrorCode::BadRequest, "route endpoint out of range");
                }
                counters.routes.fetch_add(1, Ordering::Relaxed);
                match net.route(NodeId::new(s), NodeId::new(t), &faults.to_fault_set()) {
                    Ok(delivery) => Response::Route(RouteReply::Delivered {
                        hops: delivery.hops as u32,
                        header_bits: delivery.header_bits as u32,
                        path: delivery.path.iter().map(|v| v.raw()).collect(),
                    }),
                    Err(failure) => Response::Route(RouteReply::Failed(failure.to_string())),
                }
            }
            ServeEngine::Dynamic(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "route requires the static oracle (serve without --dynamic)",
            ),
        },
        Request::Update(update) => match engine {
            ServeEngine::Static(_) => error_reply(
                ErrorCode::UnsupportedInMode,
                "update requires a dynamic oracle (serve with --store and --dynamic)",
            ),
            ServeEngine::Dynamic(dyn_oracle) => {
                let mut guard = write_lock(dyn_oracle);
                let result = match update {
                    UpdateOp::DeleteVertex(v) => guard.delete_vertex(NodeId::new(v)),
                    UpdateOp::DeleteEdge(a, b) => guard.delete_edge(NodeId::new(a), NodeId::new(b)),
                    UpdateOp::RestoreVertex(v) => guard.restore_vertex(NodeId::new(v)),
                    UpdateOp::RestoreEdge(a, b) => {
                        guard.restore_edge(NodeId::new(a), NodeId::new(b))
                    }
                };
                match result {
                    Ok(()) => {
                        counters.updates.fetch_add(1, Ordering::Relaxed);
                        Response::Update {
                            active_faults: guard.current_faults().len() as u32,
                        }
                    }
                    Err(e) => error_reply(ErrorCode::UpdateRejected, e.to_string()),
                }
            }
        },
        Request::Stats => {
            let (dynamic, active_faults) = match engine {
                ServeEngine::Static(_) => (0u8, 0u64),
                ServeEngine::Dynamic(dyn_oracle) => {
                    (1u8, read_lock(dyn_oracle).current_faults().len() as u64)
                }
            };
            Response::Stats(StatsReply {
                vertices: engine.vertices(),
                dynamic,
                active_faults,
                connections: counters.connections.load(Ordering::Relaxed),
                queries: counters.queries.load(Ordering::Relaxed),
                batch_queries: counters.batch_queries.load(Ordering::Relaxed),
                routes: counters.routes.load(Ordering::Relaxed),
                updates: counters.updates.load(Ordering::Relaxed),
                protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
            })
        }
        Request::Shutdown => Response::Shutdown,
    }
}

/// Builds wire faults from raw parts (loadgen convenience).
pub fn wire_faults(vertices: Vec<u32>, edges: Vec<(u32, u32)>) -> WireFaults {
    WireFaults { vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_workers_is_at_least_one_everywhere() {
        // Auto sizing must survive a single-core host: background_workers
        // returns avail - 1 but never 0, and the assert in
        // resolved_workers pins the contract.
        let dir = std::env::temp_dir().join(format!("fsdl-srv-workers-{}", std::process::id()));
        let g = fsdl_graph::generators::cycle(8);
        let oracle = fsdl_labels::ForbiddenSetOracle::new(&g, 1.0);
        let server = Server::bind(
            &Endpoint::Unix(dir.with_extension("sock")),
            ServeEngine::from_network(Network::from_oracle(oracle)),
            ServerConfig::default(),
        )
        .expect("bind");
        assert!(server.resolved_workers() >= 1);
        let explicit = Server::bind(
            &Endpoint::Unix(dir.with_extension("sock2")),
            server.engine.clone(),
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        assert_eq!(explicit.resolved_workers(), 3);
        let _ = std::fs::remove_file(dir.with_extension("sock"));
        let _ = std::fs::remove_file(dir.with_extension("sock2"));
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::Tcp("127.0.0.1:4000".into()).to_string(),
            "tcp://127.0.0.1:4000"
        );
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/x.sock")).to_string(),
            "unix:///tmp/x.sock"
        );
    }
}
