//! Reactor-specific serving behavior: frame reassembly from arbitrary
//! read chunks, interleaved connections, write buffering under a lazy
//! reader, slow-loris deadlines, and worker-starvation immunity — the
//! properties the readiness-driven event loop exists to provide and the
//! old connection-per-worker server could not.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fsdl_graph::generators;
use fsdl_labels::ForbiddenSetOracle;
use fsdl_routing::Network;
use fsdl_server::{
    Client, Endpoint, ErrorCode, Request, Response, ServeEngine, Server, ServerConfig, WireFaults,
};

fn scratch_sock(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fsdl-reactor-{tag}-{}-{k}.sock",
        std::process::id()
    ))
}

fn spawn_server(
    sock: PathBuf,
    config: ServerConfig,
) -> (Endpoint, std::thread::JoinHandle<fsdl_server::ServeReport>) {
    let g = generators::grid2d(6, 6);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let server = Server::bind(
        &Endpoint::Unix(sock),
        ServeEngine::Static(Arc::new(Network::from_oracle(oracle))),
        config,
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let handle = std::thread::spawn(move || server.run());
    (endpoint, handle)
}

fn connect_raw(endpoint: &Endpoint) -> UnixStream {
    let Endpoint::Unix(path) = endpoint else {
        panic!("reactor tests use unix sockets");
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) if Instant::now() >= deadline => panic!("connect: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn encode_frame(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    request.encode(&mut payload);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

/// Reads one reply frame; `None` on EOF.
fn read_reply(stream: &mut UnixStream) -> Option<Vec<u8>> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) => panic!("reply header read: {e}"),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(e) => panic!("reply payload read: {e}"),
        }
    }
    Some(payload)
}

/// A frame drip-fed one byte at a time still parses into exactly one
/// request, and the answer is bit-identical to the same query sent
/// whole — the reassembler cannot care where the kernel splits reads.
#[test]
fn drip_fed_frames_are_reassembled_across_every_boundary() {
    let (endpoint, handle) = spawn_server(scratch_sock("drip"), ServerConfig::default());

    let request = Request::Query {
        s: 0,
        t: 35,
        faults: WireFaults {
            vertices: vec![7],
            edges: vec![(1, 2)],
        },
    };
    let frame = encode_frame(&request);

    // Reference answer over a normal connection.
    let mut whole = connect_raw(&endpoint);
    whole.write_all(&frame).expect("write");
    let expected = read_reply(&mut whole).expect("whole-frame reply");

    // Same request, one byte per write with a pause so the event loop
    // observes many partial reads (header split, payload split).
    let mut drip = connect_raw(&endpoint);
    for byte in &frame {
        drip.write_all(std::slice::from_ref(byte)).expect("write");
        std::thread::sleep(Duration::from_millis(1));
    }
    let got = read_reply(&mut drip).expect("drip-fed reply");
    assert_eq!(got, expected, "reassembled answer must be bit-identical");

    // Two frames fused into one write must also yield two replies.
    let mut fused = connect_raw(&endpoint);
    let mut double = frame.clone();
    double.extend_from_slice(&frame);
    fused.write_all(&double).expect("write");
    assert_eq!(read_reply(&mut fused).expect("first fused reply"), expected);
    assert_eq!(
        read_reply(&mut fused).expect("second fused reply"),
        expected
    );

    let mut client = Client::connect(&endpoint).expect("connect");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.queries, 4);
}

/// Two connections drip-feeding interleaved chunks each get their own
/// answer: per-connection assembler state never bleeds across sockets.
#[test]
fn interleaved_partial_frames_stay_per_connection() {
    let (endpoint, handle) = spawn_server(scratch_sock("interleave"), ServerConfig::default());

    let frame_a = encode_frame(&Request::Query {
        s: 0,
        t: 35,
        faults: WireFaults::default(),
    });
    let frame_b = encode_frame(&Request::Query {
        s: 0,
        t: 1,
        faults: WireFaults::default(),
    });

    let mut conn_a = connect_raw(&endpoint);
    let mut conn_b = connect_raw(&endpoint);

    // Alternate 3-byte chunks between the two connections.
    let mut off_a = 0;
    let mut off_b = 0;
    while off_a < frame_a.len() || off_b < frame_b.len() {
        if off_a < frame_a.len() {
            let end = (off_a + 3).min(frame_a.len());
            conn_a.write_all(&frame_a[off_a..end]).expect("write a");
            off_a = end;
        }
        if off_b < frame_b.len() {
            let end = (off_b + 3).min(frame_b.len());
            conn_b.write_all(&frame_b[off_b..end]).expect("write b");
            off_b = end;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let reply_a = Response::decode(&read_reply(&mut conn_a).expect("reply a")).expect("decode a");
    let reply_b = Response::decode(&read_reply(&mut conn_b).expect("reply b")).expect("decode b");
    let (Response::Query(a), Response::Query(b)) = (&reply_a, &reply_b) else {
        panic!(
            "expected query replies, got {} / {}",
            reply_a.kind_name(),
            reply_b.kind_name()
        );
    };

    // Differential check against a fresh client on the same server.
    let mut client = Client::connect(&endpoint).expect("connect");
    let want_a = client.query(0, 35, WireFaults::default()).expect("query");
    let want_b = client.query(0, 1, WireFaults::default()).expect("query");
    assert_eq!(a.distance, want_a.distance);
    assert_eq!(b.distance, want_b.distance);
    assert_ne!(a.distance, b.distance, "distinct queries chosen to differ");

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server");
    assert_eq!(report.protocol_errors, 0);
}

/// A client that pipelines many large batches before reading anything
/// forces the server's replies through the write buffer (the socket
/// fills); every reply still arrives complete and in order.
#[test]
fn pipelined_batches_with_a_lazy_reader_exercise_the_write_buffer() {
    let (endpoint, handle) = spawn_server(scratch_sock("lazy"), ServerConfig::default());

    const BATCHES: usize = 8;
    const PER_BATCH: usize = 2048;
    let queries: Vec<(u32, u32, WireFaults)> = (0..PER_BATCH)
        .map(|i| {
            (
                (i % 36) as u32,
                ((i * 7 + 3) % 36) as u32,
                WireFaults::default(),
            )
        })
        .collect();
    let frame = encode_frame(&Request::Batch(queries.clone()));

    // Writer thread: blasts all batches without reading a single reply;
    // kernel buffers fill in both directions and only the reactor's
    // write buffer keeps frames untorn.
    let mut conn = connect_raw(&endpoint);
    let mut writer_conn = conn.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        for _ in 0..BATCHES {
            writer_conn.write_all(&frame).expect("pipelined write");
        }
    });

    let mut replies = Vec::new();
    for k in 0..BATCHES {
        let payload = read_reply(&mut conn).unwrap_or_else(|| panic!("reply {k} missing"));
        replies.push(Response::decode(&payload).expect("decode"));
    }
    writer.join().expect("writer");

    let mut client = Client::connect(&endpoint).expect("connect");
    let want = client.batch(queries.clone()).expect("reference batch");
    for reply in &replies {
        let Response::Batch(items) = reply else {
            panic!("expected batch reply, got {}", reply.kind_name());
        };
        assert_eq!(items, &want, "buffered replies must match the reference");
    }

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(
        report.batch_queries,
        ((BATCHES + 1) * PER_BATCH) as u64 // +1 for the reference batch
    );
}

/// A connection that starts a frame and stalls past the deadline gets a
/// typed `DeadlineExceeded` reply, a close, and a `deadline_closes`
/// count; a connection that is merely idle (no partial frame) is immune.
#[test]
fn slow_loris_hits_the_deadline_while_idle_connections_are_immune() {
    let config = ServerConfig {
        frame_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (endpoint, handle) = spawn_server(scratch_sock("loris"), config);

    // Idle connection: open, never writes. Must survive many deadlines.
    let mut idle = connect_raw(&endpoint);

    // Loris: 4-byte header promising 8 bytes, then 2 bytes, then stall.
    let mut loris = connect_raw(&endpoint);
    loris.write_all(&8u32.to_le_bytes()).expect("header");
    loris.write_all(&[0xAB, 0xCD]).expect("partial payload");

    let reply = read_reply(&mut loris).expect("loris must get a typed reply before the close");
    let decoded = Response::decode(&reply).expect("decode");
    let Response::Error(err) = decoded else {
        panic!("expected error reply, got {}", decoded.kind_name());
    };
    assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    assert!(
        read_reply(&mut loris).is_none(),
        "the loris connection must be closed after the typed reply"
    );

    // The idle connection outlived several deadline windows and still
    // serves: idleness is free, only mid-frame stalls are policed.
    std::thread::sleep(Duration::from_millis(100));
    idle.write_all(&encode_frame(&Request::Stats))
        .expect("write");
    let stats_payload = read_reply(&mut idle).expect("idle conn must still be served");
    let Response::Stats(stats) = Response::decode(&stats_payload).expect("decode") else {
        panic!("expected stats");
    };
    assert_eq!(stats.deadline_closes, 1, "exactly the loris was cut");

    let mut client = Client::connect(&endpoint).expect("connect");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server");
    assert_eq!(report.deadline_closes, 1);
    assert_eq!(
        report.protocol_errors, 0,
        "a deadline close is not a protocol error"
    );
}

/// The starvation regression test: with ONE worker and a crowd of idle
/// connections accepted first, queries on a late connection still flow.
/// The old connection-per-worker server parks its only worker on the
/// first idle connection forever; the reactor must answer promptly.
#[test]
fn one_worker_with_many_idle_connections_still_serves() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (endpoint, handle) = spawn_server(scratch_sock("starve"), config);

    let idle: Vec<UnixStream> = (0..50).map(|_| connect_raw(&endpoint)).collect();

    let start = Instant::now();
    let mut client = Client::connect(&endpoint).expect("connect");
    for i in 0..50u32 {
        let reply = client
            .query(i % 36, (i * 5 + 1) % 36, WireFaults::default())
            .expect("query behind idle crowd");
        assert!(reply.distance != u32::MAX || i % 36 == (i * 5 + 1) % 36);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "50 queries behind 50 idle connections took {elapsed:?}: the worker is starved"
    );

    drop(idle);
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server");
    assert_eq!(report.queries, 50);
    assert_eq!(report.connections, 51);
}
