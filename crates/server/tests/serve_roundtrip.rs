//! End-to-end serving tests: a real server thread, real sockets, typed
//! clients. The core assertion is *differential*: every answer that
//! crosses the wire must be bit-identical to the in-process oracle on
//! the same inputs — the protocol adds transport, never approximation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fsdl_graph::{generators, NodeId};
use fsdl_labels::{DynamicConfig, DynamicOracle, ForbiddenSetOracle};
use fsdl_routing::Network;
use fsdl_server::{
    Client, ClientError, Endpoint, ErrorCode, RouteReply, ServeEngine, Server, ServerConfig,
    UpdateOp, WireFaults,
};
use fsdl_testkit::Rng;

fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fsdl-serve-{tag}-{}-{k}", std::process::id()))
}

/// Binds a static-engine server on `endpoint`, runs it on a thread, and
/// hands back the shared network for in-process comparison.
fn spawn_static(
    endpoint: &Endpoint,
    workers: usize,
) -> (
    Arc<Network>,
    Endpoint,
    std::thread::JoinHandle<fsdl_server::ServeReport>,
) {
    let g = generators::grid2d(7, 5);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let net = Arc::new(Network::from_oracle(oracle));
    let server = Server::bind(
        endpoint,
        ServeEngine::Static(Arc::clone(&net)),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let bound = server.local_endpoint().expect("local endpoint");
    let handle = std::thread::spawn(move || server.run());
    (net, bound, handle)
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect_with_retry(endpoint, Duration::from_secs(5)).expect("connect")
}

#[test]
fn tcp_query_batch_route_differential() {
    let (net, endpoint, handle) = spawn_static(&Endpoint::Tcp("127.0.0.1:0".into()), 2);
    let mut client = connect(&endpoint);
    let n = net.oracle().labeling().graph().num_vertices() as u32;
    let mut rng = Rng::seed_from_u64(0xD1FF);

    // Single queries, faulty and failure-free, against the in-process
    // answer on the byte-identical fault set.
    for _ in 0..40 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        let mut vertices = Vec::new();
        for _ in 0..rng.gen_range(0..4usize) {
            let v = rng.gen_range(0..n);
            if v != s && v != t {
                vertices.push(v);
            }
        }
        let faults = WireFaults {
            vertices,
            edges: Vec::new(),
        };
        let wire = client.query(s, t, faults.clone()).expect("query");
        let local = net
            .oracle()
            .query(NodeId::new(s), NodeId::new(t), &faults.to_fault_set());
        assert_eq!(
            wire.distance,
            local.distance.raw(),
            "distance must be bit-identical"
        );
        assert_eq!(wire.sketch_vertices as usize, local.sketch_vertices);
        assert_eq!(wire.sketch_edges as usize, local.sketch_edges);
        assert_eq!(
            wire.path,
            local.path.iter().map(|v| v.raw()).collect::<Vec<_>>()
        );
    }

    // A batch frame versus `query_batch` on the same tuples.
    let tuples: Vec<(u32, u32, WireFaults)> = (0..16)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                WireFaults::default(),
            )
        })
        .collect();
    let local_tuples: Vec<_> = tuples
        .iter()
        .map(|(s, t, f)| (NodeId::new(*s), NodeId::new(*t), f.to_fault_set()))
        .collect();
    let wire_items = client.batch(tuples).expect("batch");
    let local_items = net.oracle().query_batch(&local_tuples);
    assert_eq!(wire_items.len(), local_items.len());
    for (w, l) in wire_items.iter().zip(&local_items) {
        assert_eq!(w.distance, l.distance.raw());
        assert_eq!(w.sketch_vertices as usize, l.sketch_vertices);
        assert_eq!(w.sketch_edges as usize, l.sketch_edges);
    }

    // Routing over the wire matches the in-process simulator.
    let faults = WireFaults {
        vertices: vec![17],
        edges: Vec::new(),
    };
    let wire_route = client.route(0, n - 1, faults.clone()).expect("route");
    let local_route = net.route(NodeId::new(0), NodeId::new(n - 1), &faults.to_fault_set());
    match (wire_route, local_route) {
        (
            RouteReply::Delivered {
                hops,
                header_bits,
                path,
            },
            Ok(delivery),
        ) => {
            assert_eq!(hops as usize, delivery.hops);
            assert_eq!(header_bits as usize, delivery.header_bits);
            assert_eq!(
                path,
                delivery.path.iter().map(|v| v.raw()).collect::<Vec<_>>()
            );
        }
        (RouteReply::Failed(msg), Err(failure)) => assert_eq!(msg, failure.to_string()),
        (wire, local) => panic!("wire {wire:?} disagrees with local {local:?}"),
    }

    // Stats reflect the traffic; shutdown drains cleanly.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.vertices as u32, n);
    assert_eq!(stats.dynamic, 0);
    assert_eq!(stats.queries, 40);
    assert_eq!(stats.batch_queries, 16);
    assert_eq!(stats.routes, 1);
    assert_eq!(stats.protocol_errors, 0);
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.queries, 40);
    assert_eq!(report.batch_queries, 16);
    assert_eq!(report.routes, 1);
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn unix_socket_roundtrip_and_cleanup() {
    let sock = scratch_path("unix").with_extension("sock");
    let (net, endpoint, handle) = spawn_static(&Endpoint::Unix(sock.clone()), 1);
    let mut client = connect(&endpoint);
    let n = net.oracle().labeling().graph().num_vertices() as u32;
    let wire = client
        .query(0, n - 1, WireFaults::default())
        .expect("query");
    let local = net.oracle().query(
        NodeId::new(0),
        NodeId::new(n - 1),
        &fsdl_graph::FaultSet::empty(),
    );
    assert_eq!(wire.distance, local.distance.raw());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread must not panic");
    assert!(
        !sock.exists(),
        "socket file must be removed on clean shutdown"
    );
}

#[test]
fn concurrent_clients_each_get_consistent_answers() {
    let (net, endpoint, handle) = spawn_static(&Endpoint::Tcp("127.0.0.1:0".into()), 3);
    let n = net.oracle().labeling().graph().num_vertices() as u32;
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let endpoint = endpoint.clone();
            let net = Arc::clone(&net);
            scope.spawn(move || {
                let mut client = connect(&endpoint);
                let mut rng = Rng::seed_from_u64(0xC0FFEE ^ c);
                for _ in 0..25 {
                    let s = rng.gen_range(0..n);
                    let t = rng.gen_range(0..n);
                    let wire = client.query(s, t, WireFaults::default()).expect("query");
                    let local = net.oracle().query(
                        NodeId::new(s),
                        NodeId::new(t),
                        &fsdl_graph::FaultSet::empty(),
                    );
                    assert_eq!(wire.distance, local.distance.raw());
                }
            });
        }
    });
    let mut client = connect(&endpoint);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, 100);
    assert_eq!(stats.protocol_errors, 0);
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.queries, 100);
    assert_eq!(report.protocol_errors, 0);
}

#[test]
fn dynamic_mode_updates_queries_and_mode_gating() {
    let g = generators::grid2d(6, 4);
    let dir = scratch_path("dyn-store");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut oracle = DynamicOracle::try_with_config(
        &g,
        DynamicConfig {
            epsilon: 0.5,
            ..DynamicConfig::default()
        },
    )
    .expect("dynamic oracle");
    oracle.attach_store(&dir).expect("attach store");

    let sock = scratch_path("dyn").with_extension("sock");
    let server = Server::bind(
        &Endpoint::Unix(sock.clone()),
        ServeEngine::from_dynamic(oracle),
        ServerConfig::default(),
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let handle = std::thread::spawn(move || server.run());
    let mut client = connect(&endpoint);

    let before = client.query(0, 23, WireFaults::default()).expect("query");

    // Per-query faults are static-mode vocabulary.
    let err = client
        .query(
            0,
            23,
            WireFaults {
                vertices: vec![7],
                edges: Vec::new(),
            },
        )
        .expect_err("per-query faults must be rejected in dynamic mode");
    match err {
        ClientError::Server(reply) => assert_eq!(reply.code, ErrorCode::UnsupportedInMode),
        other => panic!("expected typed server error, got {other}"),
    }

    // Route is static-only; update is the dynamic path.
    let err = client
        .route(0, 23, WireFaults::default())
        .expect_err("route must be rejected in dynamic mode");
    assert!(matches!(
        err,
        ClientError::Server(reply) if reply.code == ErrorCode::UnsupportedInMode
    ));
    let active = client.update(UpdateOp::DeleteVertex(7)).expect("update");
    assert_eq!(active, 1);
    let after = client.query(0, 23, WireFaults::default()).expect("query");
    assert!(
        after.distance >= before.distance,
        "deleting a vertex can only lengthen distances"
    );

    // Rejected updates come back typed, and the connection survives
    // (restoring a vertex that was never deleted is a typed error;
    // double-deleting is an Ok no-op by the dynamic oracle's contract).
    let err = client
        .update(UpdateOp::RestoreVertex(8))
        .expect_err("restoring a live vertex must be rejected");
    assert!(matches!(
        err,
        ClientError::Server(reply) if reply.code == ErrorCode::UpdateRejected
    ));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.dynamic, 1);
    assert_eq!(stats.active_faults, 1);
    assert_eq!(stats.updates, 1);

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.updates, 1);

    // The durable update must survive reopening the store.
    let reopened = DynamicOracle::open(&dir, &g).expect("reopen");
    assert_eq!(reopened.current_faults().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn out_of_range_query_is_a_typed_error_not_a_panic() {
    let (_net, endpoint, handle) = spawn_static(&Endpoint::Tcp("127.0.0.1:0".into()), 1);
    let mut client = connect(&endpoint);
    let err = client
        .query(0, 9_999_999, WireFaults::default())
        .expect_err("out-of-range vertex must be rejected");
    assert!(matches!(
        err,
        ClientError::Server(reply) if reply.code == ErrorCode::BadRequest
    ));
    // The same connection keeps working afterwards.
    client.query(0, 1, WireFaults::default()).expect("query");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.protocol_errors, 1);
}
