//! Protocol chaos: a live server fed truncated, oversized, bit-flipped,
//! and garbage frames from hostile connections while a healthy client
//! keeps querying. The contract under fire: every violation gets a typed
//! error reply (or, for an untrustworthy frame layer, a typed reply then
//! a close of that connection only), the healthy connection never
//! notices, and nothing panics.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fsdl_graph::generators;
use fsdl_labels::ForbiddenSetOracle;
use fsdl_routing::Network;
use fsdl_server::{
    protocol, Client, Endpoint, Request, ServeEngine, Server, ServerConfig, WireFaults,
};
use fsdl_testkit::Rng;

fn scratch_sock(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fsdl-chaos-{tag}-{}-{k}.sock", std::process::id()))
}

fn spawn_server(sock: PathBuf) -> (Endpoint, std::thread::JoinHandle<fsdl_server::ServeReport>) {
    let g = generators::grid2d(6, 6);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let server = Server::bind(
        &Endpoint::Unix(sock),
        ServeEngine::Static(Arc::new(Network::from_oracle(oracle))),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let handle = std::thread::spawn(move || server.run());
    (endpoint, handle)
}

fn connect_raw(endpoint: &Endpoint) -> UnixStream {
    let Endpoint::Unix(path) = endpoint else {
        panic!("chaos tests use unix sockets");
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) if std::time::Instant::now() >= deadline => panic!("connect: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one reply frame; returns its payload, or `None` on EOF/error
/// (a legal server response to a broken frame layer is a close).
fn read_reply(stream: &mut UnixStream) -> Option<Vec<u8>> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(_) => return None,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(_) => return None,
        }
    }
    Some(payload)
}

/// Asserts a reply payload decodes as a typed error (status byte ERR and
/// a well-formed error body).
fn assert_typed_error(payload: &[u8]) {
    let response = fsdl_server::Response::decode(payload).expect("reply must decode");
    assert!(
        matches!(response, fsdl_server::Response::Error(_)),
        "expected a typed error reply, got {}",
        response.kind_name()
    );
}

fn encode_frame(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    request.encode(&mut payload);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[test]
fn hostile_frames_get_typed_errors_while_healthy_traffic_flows() {
    let (endpoint, handle) = spawn_server(scratch_sock("mixed"));

    // The healthy client hammers queries on its own thread for the whole
    // chaos run; any cross-connection damage shows up as a failure here.
    let healthy_endpoint = endpoint.clone();
    let healthy = std::thread::spawn(move || {
        let mut client =
            Client::connect_with_retry(&healthy_endpoint, Duration::from_secs(5)).expect("connect");
        let mut rng = Rng::seed_from_u64(0xFEED);
        for _ in 0..200 {
            let s = rng.gen_range(0..36u32);
            let t = rng.gen_range(0..36u32);
            let reply = client.query(s, t, WireFaults::default()).expect("query");
            assert!(reply.distance > 0 || s == t);
        }
    });

    let mut typed_errors = 0u64;

    // 1. Unknown opcode: typed reply, connection survives for a retry.
    {
        let mut s = connect_raw(&endpoint);
        s.write_all(&[2, 0, 0, 0, 0xEE, 0x00]).expect("write");
        let reply = read_reply(&mut s).expect("unknown opcode must get a reply");
        assert_typed_error(&reply);
        typed_errors += 1;
        // Same connection, now a valid request: still served.
        s.write_all(&encode_frame(&Request::Stats)).expect("write");
        let reply = read_reply(&mut s).expect("connection must survive a typed error");
        let decoded = fsdl_server::Response::decode(&reply).expect("decode");
        assert!(matches!(decoded, fsdl_server::Response::Stats(_)));
    }

    // 2. Oversized length header: typed reply, then that connection (and
    //    only that connection) closes.
    {
        let mut s = connect_raw(&endpoint);
        s.write_all(&u32::MAX.to_le_bytes()).expect("write");
        let reply = read_reply(&mut s).expect("oversized frame must get a final typed reply");
        assert_typed_error(&reply);
        typed_errors += 1;
        assert!(
            read_reply(&mut s).is_none(),
            "an untrustworthy frame layer must close"
        );
    }

    // 3. Truncated frame: header promises more than the client sends,
    //    then the client disconnects. Server must just drop it.
    {
        let mut s = connect_raw(&endpoint);
        s.write_all(&[100, 0, 0, 0, 0x01, 0x02]).expect("write");
        drop(s);
    }

    // 4. Bit-flipped valid frames: every corruption decodes to a typed
    //    error or happens to stay valid — never a panic, never a hang.
    let mut rng = Rng::seed_from_u64(0xBAD);
    for _ in 0..60 {
        let mut frame = encode_frame(&Request::Query {
            s: rng.gen_range(0..36u32),
            t: rng.gen_range(0..36u32),
            faults: WireFaults {
                vertices: vec![rng.gen_range(0..36u32)],
                edges: vec![(1, 2)],
            },
        });
        // Flip a bit anywhere in the payload (not the length header, so
        // the frame layer stays intact and the decoder sees the damage).
        let payload_len = frame.len() - 4;
        let byte = 4 + rng.gen_range(0..payload_len);
        let bit = rng.gen_range(0..8usize);
        frame[byte] ^= 1 << bit;
        let mut s = connect_raw(&endpoint);
        s.write_all(&frame).expect("write");
        if let Some(reply) = read_reply(&mut s) {
            let response = fsdl_server::Response::decode(&reply).expect("reply must decode");
            if matches!(response, fsdl_server::Response::Error(_)) {
                typed_errors += 1;
            }
        }
    }

    // 5. Pure garbage payload in a well-formed frame.
    {
        let mut garbage = vec![0u8; 64];
        let mut rng = Rng::seed_from_u64(0x6A6B);
        for b in garbage.iter_mut() {
            *b = rng.gen_range(0..=255u32) as u8;
        }
        let mut frame = (garbage.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&garbage);
        let mut s = connect_raw(&endpoint);
        s.write_all(&frame).expect("write");
        if let Some(reply) = read_reply(&mut s) {
            // Opcode 0..=6 with garbage body may accidentally be valid;
            // anything else must be a typed error. Either way it decoded.
            let _ = fsdl_server::Response::decode(&reply).expect("reply must decode");
        }
    }

    healthy.join().expect("healthy client must never fail");

    let mut client =
        Client::connect_with_retry(&endpoint, Duration::from_secs(5)).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.protocol_errors >= typed_errors,
        "server must count the typed errors it answered ({} < {typed_errors})",
        stats.protocol_errors
    );
    // Exactly 200 healthy queries ran; a few bit-flipped frames may have
    // stayed valid (the flip landed in a vertex id) and been answered too.
    assert!(stats.queries >= 200, "healthy traffic must be untouched");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert!(report.protocol_errors >= typed_errors);
}

#[test]
fn zero_length_and_empty_frames_are_typed_errors() {
    let (endpoint, handle) = spawn_server(scratch_sock("empty"));
    {
        let mut s = connect_raw(&endpoint);
        // Zero-length frame: no opcode at all.
        s.write_all(&[0, 0, 0, 0]).expect("write");
        let reply = read_reply(&mut s).expect("empty frame must get a reply");
        assert_typed_error(&reply);
    }
    {
        // A torn header (2 of 4 bytes) then EOF: silently dropped.
        let mut s = connect_raw(&endpoint);
        s.write_all(&[7, 0]).expect("write");
        drop(s);
    }
    let mut client =
        Client::connect_with_retry(&endpoint, Duration::from_secs(5)).expect("connect");
    client.query(0, 35, WireFaults::default()).expect("query");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.queries, 1);
    assert!(report.protocol_errors >= 1);
}

/// The headline starvation scenario from the reactor rewrite: a fleet of
/// ~1000 idle connections plus 10 slow-loris clients (header then stall)
/// while a healthy client runs its full workload concurrently. Under the
/// old connection-per-worker server the 3 workers would park on the
/// first 3 idle connections and the healthy client would hang forever;
/// under the reactor the idle fleet is free, the lorises are cut by the
/// frame deadline, and healthy traffic finishes promptly.
#[test]
fn idle_fleet_and_slow_loris_leave_healthy_traffic_unaffected() {
    let sock = scratch_sock("idlefleet");
    let g = generators::grid2d(6, 6);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let server = Server::bind(
        &Endpoint::Unix(sock),
        ServeEngine::Static(Arc::new(Network::from_oracle(oracle))),
        ServerConfig {
            workers: 3,
            frame_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let handle = std::thread::spawn(move || server.run());

    // Size the idle fleet to the fd budget: this process holds ~2 fds
    // per connection-shaped thing plus the suite's own files. CI
    // containers may run with a 1024 soft limit; never die on EMFILE.
    let target = 1000usize;
    let fd_limit = fsdl_reactor::fd_soft_limit_or(640);
    let idle_count = target.min((fd_limit.saturating_sub(128) / 2) as usize);
    let idle: Vec<UnixStream> = (0..idle_count).map(|_| connect_raw(&endpoint)).collect();

    // Ten slow-loris connections: a header promising 16 bytes, then 1
    // byte of payload, then silence.
    let mut lorises: Vec<UnixStream> = (0..10)
        .map(|_| {
            let mut s = connect_raw(&endpoint);
            s.write_all(&16u32.to_le_bytes()).expect("loris header");
            s.write_all(&[0x11]).expect("loris stall byte");
            s
        })
        .collect();

    // Healthy workload, launched after the full hostile fleet is in
    // place. Under starvation this would block forever; the wall-clock
    // bound below is the regression tripwire.
    let start = std::time::Instant::now();
    let healthy_endpoint = endpoint.clone();
    let healthy = std::thread::spawn(move || {
        let mut client =
            Client::connect_with_retry(&healthy_endpoint, Duration::from_secs(5)).expect("connect");
        let mut rng = Rng::seed_from_u64(0x1D1E);
        for _ in 0..300 {
            let s = rng.gen_range(0..36u32);
            let t = rng.gen_range(0..36u32);
            let reply = client.query(s, t, WireFaults::default()).expect("query");
            assert!(reply.distance > 0 || s == t);
        }
    });
    healthy.join().expect("healthy client must never fail");
    let healthy_elapsed = start.elapsed();
    assert!(
        healthy_elapsed < Duration::from_secs(20),
        "300 healthy queries behind {idle_count} idle + 10 loris connections \
         took {healthy_elapsed:?}"
    );

    // Every loris gets its typed deadline reply and a close.
    for (k, loris) in lorises.iter_mut().enumerate() {
        let reply = read_reply(loris).unwrap_or_else(|| panic!("loris {k} got no typed reply"));
        let decoded = fsdl_server::Response::decode(&reply).expect("decode");
        let fsdl_server::Response::Error(err) = decoded else {
            panic!(
                "loris {k}: expected error reply, got {}",
                decoded.kind_name()
            );
        };
        assert_eq!(err.code, fsdl_server::ErrorCode::DeadlineExceeded);
        assert!(read_reply(loris).is_none(), "loris {k} must be closed");
    }

    // The idle fleet stayed connected through it all and still serves.
    drop(idle);
    let mut client =
        Client::connect_with_retry(&endpoint, Duration::from_secs(5)).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.queries >= 300, "healthy traffic must be fully served");
    assert_eq!(stats.deadline_closes, 10, "exactly the lorises were cut");
    assert_eq!(
        stats.protocol_errors, 0,
        "no typed errors besides deadlines"
    );
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert_eq!(report.deadline_closes, 10);
    assert_eq!(report.connections as usize, idle_count + 10 + 2);
}

#[test]
fn trailing_bytes_in_frame_are_rejected() {
    let (endpoint, handle) = spawn_server(scratch_sock("trailing"));
    let mut s = connect_raw(&endpoint);
    let mut frame = encode_frame(&Request::Stats);
    // Grow the payload by one byte and fix up the length header: the
    // request now has trailing garbage the decoder must reject.
    frame.push(0xAA);
    let new_len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&new_len.to_le_bytes());
    s.write_all(&frame).expect("write");
    let reply = read_reply(&mut s).expect("reply");
    assert_typed_error(&reply);
    drop(s);
    let mut client =
        Client::connect_with_retry(&endpoint, Duration::from_secs(5)).expect("connect");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server thread must not panic");
    assert!(report.protocol_errors >= 1);
    // MAX_FRAME is the published cap the oversized test relies on.
    const { assert!(protocol::MAX_FRAME >= 1 << 16) };
}
