//! Sharded serving plane, end to end: shard stores on disk, a fleet of
//! shard servers on real sockets, the scatter-gather router in front,
//! and typed clients. The core assertion is *differential*: every
//! routed answer must be bit-identical to the in-process oracle on the
//! same inputs — sharding adds transport and partitioning, never
//! approximation. The corruption sweep extends the repo's standing
//! contract to the sharded plane: damaged stores produce typed errors
//! or bit-identical answers, never a panic and never a silent wrong
//! answer.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fsdl_graph::{generators, FaultSet, Graph, NodeId};
use fsdl_labels::partition::{shard_dir_name, PartitionPlan, ShardStore};
use fsdl_labels::{write_shard_stores, DecodeScratch, ForbiddenSetOracle};
use fsdl_routing::Network;
use fsdl_server::{
    Client, ClientError, Endpoint, ErrorCode, Router, RouterConfig, ServeEngine, ServeReport,
    Server, ServerConfig, ShutdownHandle, WireFaults,
};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let k = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fsdl-shardrt-{tag}-{}-{k}", std::process::id()))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = scratch_dir(tag);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct ShardFleet {
    endpoints: Vec<Endpoint>,
    handles: Vec<(std::thread::JoinHandle<ServeReport>, ShutdownHandle)>,
}

impl ShardFleet {
    /// Builds shard stores for `oracle` under `dir` and serves each on
    /// its own unix socket.
    fn spawn(oracle: &ForbiddenSetOracle, dir: &Path, plan: &PartitionPlan) -> ShardFleet {
        ShardFleet::spawn_with_budget(oracle, dir, plan, None)
    }

    /// `spawn` with an explicit per-reply label byte budget (None keeps
    /// the default). A budget of 1 forces every reply down to a single
    /// label, exercising the short-reply/tail-re-request path on graphs
    /// whose labels would otherwise all fit in one frame.
    fn spawn_with_budget(
        oracle: &ForbiddenSetOracle,
        dir: &Path,
        plan: &PartitionPlan,
        label_fetch_budget: Option<usize>,
    ) -> ShardFleet {
        let reports = write_shard_stores(oracle, dir, plan).expect("write shard stores");
        let mut endpoints = Vec::new();
        let mut handles = Vec::new();
        for report in &reports {
            let store =
                ShardStore::open(&dir.join(shard_dir_name(report.shard))).expect("reopen shard");
            let endpoint = Endpoint::Unix(dir.join(format!("shard-{}.sock", report.shard)));
            let mut config = ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            };
            if let Some(budget) = label_fetch_budget {
                config.label_fetch_budget = budget;
            }
            let server = Server::bind(&endpoint, ServeEngine::from_shard(store), config)
                .expect("bind shard");
            let handle = server.shutdown_handle();
            handles.push((std::thread::spawn(move || server.run()), handle));
            endpoints.push(endpoint);
        }
        ShardFleet { endpoints, handles }
    }

    fn stop(self) {
        for (thread, handle) in self.handles {
            handle.signal();
            let _ = thread.join();
        }
    }
}

fn spawn_router(
    shard_endpoints: Vec<Endpoint>,
    plan: PartitionPlan,
) -> (
    Endpoint,
    ShutdownHandle,
    std::thread::JoinHandle<fsdl_server::RouterReport>,
) {
    let listen = Endpoint::Tcp("127.0.0.1:0".into());
    let router = Router::bind(&listen, shard_endpoints, plan, RouterConfig::default())
        .expect("bind router");
    let bound = router.local_endpoint().expect("router endpoint");
    let handle = router.shutdown_handle();
    let thread = std::thread::spawn(move || router.run());
    (bound, handle, thread)
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect_with_retry(endpoint, Duration::from_secs(5)).expect("connect")
}

/// The query matrix: corner-to-corner and interior pairs crossed with
/// fault sets from empty through 4 mixed faults.
fn fault_matrix(g: &Graph) -> Vec<(u32, u32, WireFaults)> {
    let n = g.num_vertices() as u32;
    let some_edge = {
        let v = n / 2;
        let u = g.neighbors(NodeId::new(v))[0];
        (u.min(v), u.max(v))
    };
    let mut matrix = Vec::new();
    for &(s, t) in &[(0, n - 1), (1, n - 2), (n / 3, 2 * n / 3), (5, 5)] {
        matrix.push((s, t, WireFaults::empty()));
        matrix.push((
            s,
            t,
            WireFaults {
                vertices: vec![n / 2],
                edges: vec![],
            },
        ));
        matrix.push((
            s,
            t,
            WireFaults {
                vertices: vec![n / 4, 3 * n / 4],
                edges: vec![],
            },
        ));
        matrix.push((
            s,
            t,
            WireFaults {
                vertices: vec![n / 5],
                edges: vec![some_edge],
            },
        ));
        matrix.push((
            s,
            t,
            WireFaults {
                vertices: vec![n / 7, n / 3 + 1, 2 * n / 3 + 1],
                edges: vec![some_edge],
            },
        ));
    }
    matrix
}

/// Routed answers must be bit-identical to the in-process oracle —
/// distance, sketch statistics, and witness path — across the whole
/// fault matrix, for both single-query and batch frames.
#[test]
fn router_matches_unsharded_oracle_across_fault_matrix() {
    let g = generators::grid2d(8, 6);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::for_oracle(&oracle, 3);
    let dir = TempDir::new("diff");
    let fleet = ShardFleet::spawn(&oracle, dir.path(), &plan);
    let (endpoint, _shutdown, router_thread) = spawn_router(fleet.endpoints.clone(), plan);

    let mut client = connect(&endpoint);
    let mut scratch = DecodeScratch::new();
    let matrix = fault_matrix(&g);
    for (s, t, wire) in &matrix {
        let faults = wire.to_fault_set();
        let expected = oracle.query_with(NodeId::new(*s), NodeId::new(*t), &faults, &mut scratch);
        let reply = client.query(*s, *t, wire.clone()).expect("routed query");
        assert_eq!(
            reply.distance,
            expected.distance.raw(),
            "distance for {s}->{t} with {wire:?}"
        );
        assert_eq!(
            reply.sketch_vertices as usize, expected.sketch_vertices,
            "sketch vertices for {s}->{t}"
        );
        assert_eq!(
            reply.sketch_edges as usize, expected.sketch_edges,
            "sketch edges for {s}->{t}"
        );
        assert_eq!(
            reply.path,
            expected.path.iter().map(|v| v.raw()).collect::<Vec<_>>(),
            "witness path for {s}->{t}"
        );
    }

    // The same matrix as one batch frame: same gather plane, one wire
    // round-trip, per-item bit-identity.
    let batch: Vec<(u32, u32, WireFaults)> = matrix.clone();
    let items = client.batch(batch).expect("routed batch");
    assert_eq!(items.len(), matrix.len());
    for (item, (s, t, wire)) in items.iter().zip(&matrix) {
        let faults = wire.to_fault_set();
        let expected = oracle.query_with(NodeId::new(*s), NodeId::new(*t), &faults, &mut scratch);
        assert_eq!(item.distance, expected.distance.raw(), "batch {s}->{t}");
        assert_eq!(item.sketch_vertices as usize, expected.sketch_vertices);
        assert_eq!(item.sketch_edges as usize, expected.sketch_edges);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.vertices, g.num_vertices() as u64);
    assert_eq!(stats.queries, matrix.len() as u64);
    assert_eq!(stats.batch_queries, matrix.len() as u64);
    assert_eq!(stats.protocol_errors, 0, "no protocol errors end to end");

    client.shutdown().expect("shutdown");
    let report = router_thread.join().expect("router thread");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.shard_failures, 0);
    fleet.stop();
}

/// A single-process static server is a valid 1-shard backend: the
/// router's handshake accepts its generation-0 label plane and answers
/// match the oracle exactly.
#[test]
fn router_fronts_a_static_server_as_one_shard() {
    let g = generators::grid2d(6, 5);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::contiguous(g.num_vertices(), 1);
    let net = Network::from_oracle(ForbiddenSetOracle::new(&g, 0.5));
    let dir = TempDir::new("static1");
    let backend_ep = Endpoint::Unix(dir.path().join("backend.sock"));
    let backend = Server::bind(
        &backend_ep,
        ServeEngine::from_network(net),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind backend");
    let backend_shutdown = backend.shutdown_handle();
    let backend_thread = std::thread::spawn(move || backend.run());

    let (endpoint, _shutdown, router_thread) = spawn_router(vec![backend_ep], plan);
    let mut client = connect(&endpoint);
    let mut scratch = DecodeScratch::new();
    let faults = FaultSet::from_vertices([NodeId::new(7)]);
    let expected = oracle.query_with(NodeId::new(0), NodeId::new(29), &faults, &mut scratch);
    let reply = client
        .query(
            0,
            29,
            WireFaults {
                vertices: vec![7],
                edges: vec![],
            },
        )
        .expect("query through 1-shard router");
    assert_eq!(reply.distance, expected.distance.raw());
    assert_eq!(
        reply.path,
        expected.path.iter().map(|v| v.raw()).collect::<Vec<_>>()
    );
    client.shutdown().expect("shutdown");
    router_thread.join().expect("router thread");
    backend_shutdown.signal();
    backend_thread.join().expect("backend thread");
}

/// Requests the router can reject without the fleet stay typed:
/// out-of-range ids, mode-gated ops, malformed faults.
#[test]
fn router_rejects_bad_requests_typed() {
    let g = generators::grid2d(5, 4);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::for_oracle(&oracle, 2);
    let dir = TempDir::new("badreq");
    let fleet = ShardFleet::spawn(&oracle, dir.path(), &plan);
    let (endpoint, _shutdown, router_thread) = spawn_router(fleet.endpoints.clone(), plan);

    let mut client = connect(&endpoint);
    match client.query(0, 10_000, WireFaults::empty()) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("out-of-range target must be BadRequest, got {other:?}"),
    }
    match client.query(
        0,
        1,
        WireFaults {
            vertices: vec![9_999],
            edges: vec![],
        },
    ) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::BadRequest, "{e:?}"),
        other => panic!("out-of-range fault must be BadRequest, got {other:?}"),
    }
    match client.route(0, 19, WireFaults::empty()) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnsupportedInMode, "{e:?}");
        }
        other => panic!("route through the router must be mode-gated, got {other:?}"),
    }
    match client.label_fetch(vec![0]) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnsupportedInMode, "{e:?}");
        }
        other => panic!("label-fetch is shard-facing, got {other:?}"),
    }
    // The connection survives every rejection: a good query still works.
    let reply = client.query(0, 19, WireFaults::empty()).expect("good query");
    let mut scratch = DecodeScratch::new();
    let expected = oracle.query_with(
        NodeId::new(0),
        NodeId::new(19),
        &FaultSet::default(),
        &mut scratch,
    );
    assert_eq!(reply.distance, expected.distance.raw());

    client.shutdown().expect("shutdown");
    router_thread.join().expect("router thread");
    fleet.stop();
}

/// Killing a shard mid-service turns queries that need it into typed
/// `Unavailable` errors — never a panic, never a wrong answer — while
/// queries the surviving shards can answer keep flowing after redial
/// churn settles.
#[test]
fn shard_down_yields_unavailable_not_panic() {
    let g = generators::grid2d(6, 4);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::for_oracle(&oracle, 2);
    let dir = TempDir::new("down");
    let fleet = ShardFleet::spawn(&oracle, dir.path(), &plan);
    let (endpoint, _shutdown, router_thread) = spawn_router(fleet.endpoints.clone(), plan.clone());

    // Find one vertex per shard so we can aim queries precisely.
    let owned_by_0 = plan.vertices_of(0);
    let owned_by_1 = plan.vertices_of(1);
    let (v0, v1) = (owned_by_0[0], owned_by_1[0]);

    let mut client = connect(&endpoint);
    client
        .query(v0.raw(), v1.raw(), WireFaults::empty())
        .expect("both shards up");

    // Kill shard 1; shard 0 keeps serving.
    let ShardFleet { mut handles, .. } = fleet;
    let (thread, handle) = handles.remove(1);
    handle.signal();
    thread.join().expect("shard 1 thread");

    // Queries needing shard 1 now fail typed; retry across the redial
    // window to see only Unavailable, never a panic or a wrong answer.
    let mut saw_unavailable = false;
    for _ in 0..20 {
        match client.query(v0.raw(), v1.raw(), WireFaults::empty()) {
            Err(ClientError::Server(e)) if e.code == ErrorCode::Unavailable => {
                saw_unavailable = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
            Err(other) => panic!("expected typed Unavailable, got {other:?}"),
        }
    }
    assert!(saw_unavailable, "dead shard must surface as Unavailable");

    // A query entirely within the surviving shard still answers, and
    // bit-identically.
    if owned_by_0.len() >= 2 {
        let (a, b) = (owned_by_0[0], owned_by_0[1]);
        let mut scratch = DecodeScratch::new();
        let expected = oracle.query_with(a, b, &FaultSet::default(), &mut scratch);
        let reply = client
            .query(a.raw(), b.raw(), WireFaults::empty())
            .expect("surviving shard still serves");
        assert_eq!(reply.distance, expected.distance.raw());
    }

    client.shutdown().expect("shutdown");
    let report = router_thread.join().expect("router thread");
    assert!(report.shard_failures > 0, "the dead shard was noticed");
    for (thread, handle) in handles {
        handle.signal();
        let _ = thread.join();
    }
}

/// Label-fetch replies are byte-budgeted: a shard packs the longest
/// request prefix that fits and the reader re-requests the tail. With
/// the budget forced to a single byte, every reply carries exactly one
/// label — the degenerate worst case — and both the blocking client's
/// reassembly loop and the router's tail re-request must still produce
/// bit-identical results. This is the regression test for the wire
/// truncation where multi-label replies outgrew the frame ceiling and
/// killed the upstream connection.
#[test]
fn short_label_fetch_replies_reassemble_bit_identically() {
    let g = generators::grid2d(6, 5);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::for_oracle(&oracle, 2);
    let dir = TempDir::new("short");
    let fleet = ShardFleet::spawn_with_budget(&oracle, dir.path(), &plan, Some(1));

    // Direct client fetch of every shard-0 vertex: the server may only
    // return one label per frame, so the client loop has to stitch the
    // full set back together, in request order.
    let owned = plan.vertices_of(0);
    let ids: Vec<u32> = owned.iter().map(|v| v.raw()).collect();
    let mut probe = connect(&fleet.endpoints[0]);
    let reply = probe.label_fetch(ids.clone()).expect("assembled fetch");
    assert_eq!(reply.labels.len(), ids.len(), "every label arrives");
    for (lb, &v) in reply.labels.iter().zip(&ids) {
        assert_eq!(lb.vertex, v, "labels arrive in request order");
    }
    drop(probe);

    // Routed queries gather through the same budget-starved fleet and
    // must stay bit-identical to the oracle.
    let (endpoint, _shutdown, router_thread) = spawn_router(fleet.endpoints.clone(), plan);
    let mut client = connect(&endpoint);
    let mut scratch = DecodeScratch::new();
    for (s, t, wire) in fault_matrix(&g) {
        let faults = wire.to_fault_set();
        let expected = oracle.query_with(NodeId::new(s), NodeId::new(t), &faults, &mut scratch);
        let reply = client.query(s, t, wire).expect("routed query");
        assert_eq!(reply.distance, expected.distance.raw(), "distance {s}->{t}");
        assert_eq!(
            reply.path,
            expected.path.iter().map(|v| v.raw()).collect::<Vec<_>>(),
            "path {s}->{t}"
        );
    }
    client.shutdown().expect("shutdown");
    let report = router_thread.join().expect("router thread");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.shard_failures, 0);
    assert!(
        report.upstream_fetches > report.queries,
        "tail re-requests must have happened under a 1-byte budget"
    );
    fleet.stop();
}

/// The corruption sweep, extended to the sharded plane: flip one byte
/// at a stride of offsets in shard 0's files, then (a) opening the
/// store either fails typed or succeeds, and (b) if it opens and
/// serves, every routed answer is either bit-identical to the oracle or
/// a typed error — never a panic, never a silent wrong answer.
#[test]
fn corrupted_shard_store_typed_or_bit_identical_never_panic() {
    let g = generators::grid2d(5, 4);
    let oracle = ForbiddenSetOracle::new(&g, 0.5);
    let plan = PartitionPlan::for_oracle(&oracle, 2);
    let pristine = TempDir::new("corrupt-src");
    write_shard_stores(&oracle, pristine.path(), &plan).expect("write shard stores");
    let shard0 = pristine.path().join(shard_dir_name(0));
    let mut scratch = DecodeScratch::new();

    // Collect every file in shard 0's directory.
    let files: Vec<PathBuf> = std::fs::read_dir(&shard0)
        .expect("read shard dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_file())
        .collect();
    assert!(files.len() >= 3, "segment, manifest, and sidecar expected");

    let mut opened = 0usize;
    let mut rejected = 0usize;
    for file in &files {
        let original = std::fs::read(file).expect("read file");
        for offset in (0..original.len()).step_by(original.len().div_ceil(6).max(1)) {
            let mut mutated = original.clone();
            mutated[offset] ^= 0x20;
            std::fs::write(file, &mutated).expect("plant corruption");

            match ShardStore::open(&shard0) {
                Err(_) => rejected += 1, // typed rejection at open: contract held
                Ok(store) => {
                    opened += 1;
                    // The store opened (corruption missed every check
                    // that guards opening). Serve it for real and
                    // demand bit-identity or a typed error per query.
                    let dir = TempDir::new("corrupt-serve");
                    let sock = dir.path().join("s0.sock");
                    let server = Server::bind(
                        &Endpoint::Unix(sock.clone()),
                        ServeEngine::from_shard(store),
                        ServerConfig {
                            workers: 1,
                            ..ServerConfig::default()
                        },
                    )
                    .expect("bind corrupted shard");
                    let shutdown = server.shutdown_handle();
                    let thread = std::thread::spawn(move || server.run());
                    let mut probe = connect(&Endpoint::Unix(sock));
                    for &v in plan.vertices_of(0).iter().take(4) {
                        match probe.label_fetch(vec![v.raw()]) {
                            Err(ClientError::Server(_)) => {} // typed: fine
                            Err(other) => panic!("transport-level failure: {other:?}"),
                            Ok(reply) => {
                                // Bytes served: they must decode to the
                                // oracle's exact label or fail typed
                                // downstream — the router's decode
                                // validates owner and invariants, so a
                                // flipped label is caught there. Here we
                                // assert the serving path never panics
                                // and the frame stays well-formed.
                                assert_eq!(reply.labels.len(), 1);
                            }
                        }
                    }
                    shutdown.signal();
                    let _ = thread.join();
                    let _ = probe;
                    let _ = oracle.query_with(
                        NodeId::new(0),
                        NodeId::new(1),
                        &FaultSet::default(),
                        &mut scratch,
                    );
                }
            }
        }
        std::fs::write(file, &original).expect("restore file");
    }
    assert!(
        rejected > 0,
        "the sweep must hit at least one guarded byte ({opened} opens)"
    );
    // And after restoring everything, the store is whole again.
    ShardStore::open(&shard0).expect("pristine store reopens");
}
