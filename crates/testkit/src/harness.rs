//! A minimal deterministic property-test harness.
//!
//! Replaces `proptest` for this workspace's needs: run a closure over
//! many pseudo-random cases, each driven by its own seeded [`Rng`],
//! with the reproducing seed printed on failure. Unlike `proptest`
//! there is no shrinking — cases are cheap and fully determined by a
//! seed, so "re-run with this seed" is the whole reproduction story.
//!
//! Environment knobs (all optional):
//!
//! - `FSDL_TESTKIT_CASES`: overrides the case count of every `check`
//!   call (e.g. `FSDL_TESTKIT_CASES=10000` for a soak run).
//! - `FSDL_TESTKIT_SOAK`: multiplies each `check`'s case count (used by
//!   the CI soak job; `soak_multiplier` exposes it to `#[ignore]`d soak
//!   tests that scale their own loops).
//! - `FSDL_TESTKIT_SEED`: overrides the base seed, re-randomizing every
//!   derived case while staying reproducible.
//! - `FSDL_TESTKIT_REPRO`: run only the single case with this seed
//!   (decimal or `0x`-prefixed hex) — paste the seed from a failure
//!   report to replay exactly that case.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};

/// Default base seed when neither the test nor the environment chooses
/// one. Arbitrary but fixed: determinism matters, the value does not.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_F5D1_2010_0001;

/// FNV-1a over `name`, used to give every named check an independent
/// seed lane so two tests with the same base seed do not replay each
/// other's cases.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw:?} is not a valid u64"),
    }
}

/// Multiplier applied to soak-style loops, from `FSDL_TESTKIT_SOAK`
/// (default 1). `#[ignore]`d soak tests multiply their round counts by
/// this so CI can scale them without a recompile.
#[must_use]
pub fn soak_multiplier() -> usize {
    env_u64("FSDL_TESTKIT_SOAK").map_or(1, |v| v.max(1) as usize)
}

/// Runs `body` over `cases` pseudo-random cases derived from a fixed
/// per-test seed; see the module docs for the environment knobs.
///
/// On a failing case the harness prints the test name, case index, and
/// the *case seed*; replay exactly that case with
/// `FSDL_TESTKIT_REPRO=<seed> cargo test <name>`.
///
/// # Panics
///
/// Re-raises the panic of the first failing case (after reporting).
pub fn check<F: FnMut(&mut Rng)>(name: &str, cases: usize, body: F) {
    check_seeded(name, cases, DEFAULT_BASE_SEED, body);
}

/// [`check`] with an explicit base seed (rarely needed; prefer `check`
/// so the whole suite shares one seed lane scheme).
pub fn check_seeded<F: FnMut(&mut Rng)>(name: &str, cases: usize, base_seed: u64, mut body: F) {
    if let Some(repro) = env_u64("FSDL_TESTKIT_REPRO") {
        eprintln!("[fsdl-testkit] {name}: replaying single case seed {repro:#018x}");
        let mut rng = Rng::seed_from_u64(repro);
        body(&mut rng);
        return;
    }
    let base = env_u64("FSDL_TESTKIT_SEED").unwrap_or(base_seed);
    let cases = env_u64("FSDL_TESTKIT_CASES")
        .map_or(cases, |v| v as usize)
        .saturating_mul(soak_multiplier());
    let mut lane = base ^ fnv1a(name);
    for case in 0..cases {
        let case_seed = splitmix64(&mut lane);
        let mut rng = Rng::seed_from_u64(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "[fsdl-testkit] {name}: case {case}/{cases} FAILED; reproduce with \
                 FSDL_TESTKIT_REPRO={case_seed:#018x}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_all_cases() {
        let mut count = 0usize;
        check("check_runs_all_cases", 17, |_| count += 1);
        // FSDL_TESTKIT_CASES / _SOAK may scale the count in CI; it must
        // be at least the requested number of cases.
        assert!(count >= 17 || std::env::var("FSDL_TESTKIT_CASES").is_ok());
    }

    #[test]
    fn check_is_deterministic() {
        let collect = |label: &str| {
            let mut vals = Vec::new();
            check_seeded(label, 20, 42, |rng| vals.push(rng.next_u64()));
            vals
        };
        assert_eq!(collect("det"), collect("det"));
        // Different names sample different lanes.
        assert_ne!(collect("det"), collect("det2"));
    }

    #[test]
    fn failing_case_reports_and_reraises() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_seeded("fails_on_third", 10, 1, |rng| {
                // Fail deterministically on some cases.
                assert!(rng.next_u64() % 3 != 0, "synthetic failure");
            });
        }));
        assert!(result.is_err(), "failure must propagate out of check");
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_ne!(fnv1a(""), fnv1a("a"));
    }
}
