//! `fsdl-testkit`: hermetic randomness and property testing for the
//! fsdl workspace.
//!
//! This crate exists so the workspace has **zero external
//! dependencies**: `cargo build` and `cargo test` work with no network
//! and no registry cache. It provides the two things the workspace
//! previously pulled `rand` and `proptest` in for:
//!
//! - [`Rng`]: a seeded xoshiro256** PRNG with the `gen_range`-shaped
//!   API the codebase uses ([`Rng::gen_range`], [`Rng::gen_bool`],
//!   [`Rng::gen_f64`]). Same seed ⇒ same stream, on every platform,
//!   forever — graph generators keyed by a seed are part of the test
//!   suite's stability contract.
//! - [`check`]: a deterministic property-test harness — N cases per
//!   test, each from its own derived seed, failures reported with the
//!   reproducing seed (`FSDL_TESTKIT_REPRO=<seed>` replays one case),
//!   and a soak mode scaled by `FSDL_TESTKIT_SOAK`.
//!
//! There is intentionally no shrinking, no macro DSL, and no trait
//! object soup: generators are plain `fn(&mut Rng) -> T` helpers owned
//! by the tests that use them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod rng;

pub use harness::{check, check_seeded, soak_multiplier, DEFAULT_BASE_SEED};
pub use rng::{Rng, SampleRange};
