//! Seeded pseudo-random number generation with no external dependencies.
//!
//! The generator is xoshiro256** (Blackman–Vigna) seeded through
//! SplitMix64, the standard pairing for turning a single `u64` seed into
//! a full 256-bit state without correlated lanes. It is deliberately
//! *not* cryptographic: the goal is fast, portable, reproducible streams
//! for graph generation and property tests. The same seed produces the
//! same stream on every platform and every run, which is the entire
//! hermeticity contract of this crate.
//!
//! The API mirrors the subset of `rand::Rng` this workspace actually
//! uses (`gen_range` over half-open and inclusive integer ranges,
//! `gen_bool`, a unit-interval `f64`), so migrating call sites is an
//! import swap plus `gen::<f64>()` → `gen_f64()`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for deriving per-case seeds in the harness; its
/// output is well distributed even for sequential inputs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable PRNG (xoshiro256**).
///
/// Construct with [`Rng::seed_from_u64`]; identical seeds yield
/// identical streams forever (the algorithm is part of this crate's
/// compatibility contract — changing it would invalidate every
/// seed-pinned test in the workspace).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is expanded from `seed`
    /// via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits: (2^53 possible mantissas) / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, span)` via Lemire's multiply-shift with
    /// rejection (unbiased). `span` must be nonzero.
    #[inline]
    fn uniform_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // threshold = 2^64 mod span; rejecting low products below it
        // leaves every residue with exactly floor(2^64/span) preimages.
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Derives an independent child generator (used by the harness to
    /// give each test case its own stream).
    #[must_use]
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Range types accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.uniform_below(span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "gen_range called with empty range {start}..={end}"
                );
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full u64-width range: every output is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.uniform_below(span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_endpoints() {
        let mut rng = Rng::seed_from_u64(8);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..=3);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..=3 should appear: {seen:?}"
        );
    }

    #[test]
    fn gen_range_singleton_inclusive() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(5u32..=5), 5);
        }
    }

    #[test]
    fn gen_range_full_u64_does_not_panic() {
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut rng = Rng::seed_from_u64(11);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(12);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(14);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_below_is_unbiased_enough() {
        // Chi-squared-ish sanity check on a non-power-of-two span.
        let mut rng = Rng::seed_from_u64(15);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9000..11000).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from_u64(16);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_vector() {
        // Pins the algorithm: if the PRNG ever changes, every seed-pinned
        // test in the workspace silently changes with it. Fail loudly here
        // instead.
        let mut rng = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // SplitMix64 known-answer test from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
