//! Fully dynamic distance oracle: a maintenance window on a ring network.
//!
//! Demonstrates the STOC'12 byproduct the paper cites: buffering deletions
//! in the forbidden set gives a fully dynamic `(1+ε)` distance oracle with
//! periodic rebuilds. A ring of servers is taken down one by one for
//! maintenance and brought back; distance queries stay live (and correct)
//! throughout, and the oracle rebuilds itself only when the buffered fault
//! set crosses the `√n` threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_maintenance
//! ```

use fsdl::graph::{generators, NodeId};
use fsdl::labels::DynamicOracle;

fn main() {
    let n = 64usize;
    let g = generators::cycle(n);
    let mut oracle = DynamicOracle::new(&g, 1.0);
    println!(
        "ring of {n} servers; dynamic oracle with rebuild threshold ~ sqrt(n) = {}",
        (n as f64).sqrt().ceil()
    );

    let probe = (NodeId::new(2), NodeId::new(34));
    println!(
        "\nbaseline distance {} -> {}: {}",
        probe.0,
        probe.1,
        oracle.distance(probe.0, probe.1)
    );

    // Maintenance wave: take down every 7th server, then bring them back.
    let wave: Vec<NodeId> = (0..n as u32).step_by(7).map(NodeId::new).collect();
    for &v in &wave {
        if v == probe.0 || v == probe.1 {
            continue;
        }
        oracle.delete_vertex(v).expect("v in range");
        println!(
            "down {v}: buffered |F| = {}, rebuilds = {}, d({}, {}) = {}",
            oracle.buffered(),
            oracle.rebuilds(),
            probe.0,
            probe.1,
            oracle.distance(probe.0, probe.1)
        );
    }

    println!("\nmaintenance done; bringing servers back");
    for &v in wave.iter().rev() {
        if v == probe.0 || v == probe.1 {
            continue;
        }
        oracle.restore_vertex(v).expect("v was deleted");
    }
    println!(
        "all restored: d({}, {}) = {} (rebuilds performed: {})",
        probe.0,
        probe.1,
        oracle.distance(probe.0, probe.1),
        oracle.rebuilds()
    );
    assert_eq!(
        oracle.distance(probe.0, probe.1).finite(),
        Some(32),
        "ring distance must be restored exactly"
    );
}
