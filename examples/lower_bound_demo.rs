//! Walkthrough of the Theorem 3.1 lower bound.
//!
//! Shows, step by step, why forbidden-set labels *must* be large on
//! doubling graphs: (1) the family `F_{n,α}` between `H_{p,d}` and
//! `G_{p,d}` is huge; (2) everywhere-failure queries turn any forbidden-set
//! connectivity oracle into an adjacency oracle, so the oracle encodes its
//! whole graph; (3) therefore some label carries `log₂|F|/n` bits — and the
//! demo runs the reconstruction attack through this repository's own
//! labeling scheme to prove the information really is in the labels.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lower_bound_demo
//! ```

use fsdl::bounds::{everywhere_failure, reconstruct_graph, LowerBoundFamily};
use fsdl::graph::NodeId;
use fsdl::labels::ForbiddenSetOracle;

fn main() {
    // Step 1: the family.
    let fam = LowerBoundFamily::new(3, 2);
    println!(
        "family F(p=3, d=2): n = {} vertices, alpha = 2d = {}",
        fam.num_vertices(),
        fam.alpha()
    );
    println!(
        "spanner H has {} edges, supergraph G has {}; {} free edges",
        fam.spanner().num_edges(),
        fam.full_graph().num_edges(),
        fam.log2_size()
    );
    println!(
        "=> |F| = 2^{} members; any connectivity scheme needs >= {:.1} bits in some label\n",
        fam.log2_size(),
        fam.per_label_lower_bound_bits()
    );

    // Step 2: a secret member, known only through its labels.
    let secret = fam.random_member(0xBEEF);
    println!(
        "a 'secret' member is drawn ({} edges) and only its labels are published",
        secret.num_edges()
    );
    let oracle = ForbiddenSetOracle::new(&secret, 3.0);

    // Step 3: one everywhere-failure query, spelled out.
    let (i, j) = (NodeId::new(0), NodeId::new(4));
    let f = everywhere_failure(fam.num_vertices(), i, j);
    println!(
        "query connected({i}, {j}, F = everything else) = {} (adjacency: {})",
        oracle.connected(i, j, &f),
        secret.has_edge(i, j)
    );

    // Step 4: the full attack.
    let rebuilt = reconstruct_graph(&oracle);
    let exact = rebuilt == secret;
    println!(
        "\nfull attack: {} everywhere-failure queries -> reconstruction {}",
        fam.num_vertices() * (fam.num_vertices() - 1) / 2,
        if exact { "EXACT" } else { "FAILED" }
    );
    assert!(exact);
    println!(
        "the labels necessarily encoded all {} free-edge bits — the counting bound is real",
        fam.log2_size()
    );
}
