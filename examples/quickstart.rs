//! Quickstart: build forbidden-set distance labels for a small network and
//! answer queries under failures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::labels::ForbiddenSetOracle;

fn main() {
    // 1. A network: the 8x8 mesh (doubling dimension ~ 2).
    let g = generators::grid2d(8, 8);
    println!(
        "network: 8x8 mesh, {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // 2. Preprocess once: (1+eps)-approximate forbidden-set labels.
    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&g, eps);
    println!(
        "labels built with eps = {eps} (c = {}, {} levels)",
        oracle.params().c(),
        oracle.params().num_levels()
    );

    // 3. A label is a self-contained, bit-encodable artifact.
    let v = NodeId::new(27);
    let label = oracle.label(v);
    let bits = fsdl::labels::codec::encoded_bits(&label, g.num_vertices());
    println!(
        "label of {v}: {} points, {} virtual edges, {} bits encoded",
        label.stats().points,
        label.stats().virtual_edges,
        bits
    );

    // 4. Queries under failures: only the labels of s, t and F are used.
    let s = NodeId::new(0); // top-left corner
    let t = NodeId::new(63); // bottom-right corner
    println!(
        "\nfailure-free distance {s} -> {t}: {}",
        oracle.distance(s, t, &FaultSet::empty())
    );

    let mut faults = FaultSet::empty();
    for f in [9u32, 18, 27, 36, 45, 54] {
        faults.forbid_vertex(NodeId::new(f)); // a diagonal wall of failures
    }
    let answer = oracle.query(s, t, &faults);
    println!(
        "with {} failed routers: distance = {} (sketch: {} vertices, {} edges)",
        faults.len(),
        answer.distance,
        answer.sketch_vertices,
        answer.sketch_edges
    );
    println!(
        "witness path: {}",
        answer
            .path
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // A picture is worth a thousand hops.
    println!("\nmap (S source, T target, X failed, * witness path):");
    print!(
        "{}",
        fsdl::graph::render::render_scenario(8, 8, s, t, &faults, &answer.path)
    );

    // 5. Connectivity queries come for free.
    let mut wall = FaultSet::empty();
    for y in 0..8u32 {
        wall.forbid_vertex(NodeId::new(y * 8 + 4)); // a full cut
    }
    println!(
        "\nfull column failed: connected({s}, {t}) = {}",
        oracle.connected(s, t, &wall)
    );
}
