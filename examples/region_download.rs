//! The "hand-held device" scenario: download the labels for your region
//! once, then answer every local query offline with one batched decode.
//!
//! The paper's introduction motivates labels with devices that should only
//! download "information proportional to the failures relevant to [their]
//! region and query". This example takes a device at `s` on a city grid,
//! downloads the labels of its points of interest plus the currently-known
//! closures, and computes all distances with a single sketch construction
//! and Dijkstra pass ([`ForbiddenSetOracle::distances_to`]) — then verifies
//! every answer against ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example region_download
//! ```

use fsdl::baselines::ExactOracle;
use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::labels::ForbiddenSetOracle;

fn main() {
    let side = 14usize;
    let city = generators::grid2d(side, side);
    let n = city.num_vertices();
    let oracle = ForbiddenSetOracle::new(&city, 1.0);
    let exact = ExactOracle::new(&city);

    // The device sits at an intersection; its points of interest are spread
    // over the map.
    let device = NodeId::new(30);
    let pois: Vec<NodeId> = (0..n as u32).step_by(17).map(NodeId::new).collect();
    println!(
        "device at {device}; {} points of interest on a {side}x{side} grid",
        pois.len()
    );

    // Currently known closures (e.g., pushed to the device this morning).
    let closures = FaultSet::from_vertices([NodeId::new(45), NodeId::new(59), NodeId::new(73)]);

    // How much does the device download? The labels of s, the POIs, and the
    // closures — nothing proportional to the whole map.
    let mut downloaded_bits = fsdl::labels::codec::encoded_bits(&oracle.label(device), n);
    for &p in &pois {
        downloaded_bits += fsdl::labels::codec::encoded_bits(&oracle.label(p), n);
    }
    for f in closures.vertices() {
        downloaded_bits += fsdl::labels::codec::encoded_bits(&oracle.label(f), n);
    }
    println!(
        "downloaded {} labels, {:.1} KiB total",
        1 + pois.len() + closures.len(),
        downloaded_bits as f64 / 8192.0
    );

    // One batched decode answers everything.
    let distances = oracle.distances_to(device, &pois, &closures);
    println!("\n{:<8} {:>10} {:>8}", "POI", "distance", "exact");
    for (k, &poi) in pois.iter().enumerate() {
        let truth = exact.distance(device, poi, &closures);
        println!(
            "{:<8} {:>10} {:>8}",
            poi.to_string(),
            distances[k].to_string(),
            truth
        );
        match (distances[k].finite(), truth.finite()) {
            (Some(d), Some(t)) => assert!(d >= t && f64::from(d) <= 2.0 * f64::from(t)),
            (None, None) => {}
            (a, b) => unreachable!("connectivity disagreement: {a:?} vs {b:?}"),
        }
    }
    println!("\nall {} answers verified against ground truth", pois.len());
}
