//! Road-network scenario: distance queries under road closures.
//!
//! The paper's application section motivates forbidden-set labels with road
//! networks ("allowing users to compute distances in road networks given a
//! set of failures — road closures, accidents — could be an important
//! feature of new practical labeling schemes"). This example models a city
//! as a king-move street grid (low doubling dimension, like real road
//! networks with low highway dimension), simulates a day of incidents, and
//! answers navigation queries from labels alone — comparing every answer to
//! ground truth and reporting realized stretch.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example road_closures
//! ```

use fsdl::baselines::ExactOracle;
use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::labels::ForbiddenSetOracle;
use fsdl_testkit::Rng;

fn main() {
    // A 12x12 downtown street grid with diagonal avenues (king moves).
    let side = 12usize;
    let city = generators::king_grid(side, side);
    let n = city.num_vertices();
    println!(
        "city map: {side}x{side} intersections, {} road segments",
        city.num_edges()
    );

    let eps = 1.0;
    let oracle = ForbiddenSetOracle::new(&city, eps);
    let exact = ExactOracle::new(&city);
    println!(
        "navigation labels built (eps = {eps}, guaranteed stretch {})\n",
        1.0 + eps
    );

    let mut rng = Rng::seed_from_u64(20260707);
    let mut closures = FaultSet::empty();
    let mut worst_stretch: f64 = 1.0;
    let mut answered = 0usize;

    for hour in 0..12 {
        // Each hour: an incident closes an intersection or a road segment,
        // and sometimes an earlier closure clears.
        if closures.len() > 4 && rng.gen_bool(0.5) {
            // min, not iteration order: FaultSet's hash-set order varies
            // per process and the run should be deterministic.
            let reopened = closures.vertices().min();
            if let Some(v) = reopened {
                closures.permit_vertex(v);
                println!("[h{hour:02}] intersection {v} reopened");
            }
        } else if rng.gen_bool(0.6) {
            let v = NodeId::from_index(rng.gen_range(0..n));
            closures.forbid_vertex(v);
            println!("[h{hour:02}] incident: intersection {v} closed");
        } else {
            let v = NodeId::from_index(rng.gen_range(0..n));
            let nbrs = city.neighbors(v);
            let w = NodeId::new(nbrs[rng.gen_range(0..nbrs.len())]);
            closures.forbid_edge_unchecked(v, w);
            println!("[h{hour:02}] roadworks: segment {v} - {w} closed");
        }

        // Three navigation queries against the current closure set.
        for _ in 0..3 {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            if closures.is_vertex_faulty(s) || closures.is_vertex_faulty(t) {
                continue;
            }
            let est = oracle.distance(s, t, &closures);
            let truth = exact.distance(s, t, &closures);
            match (est.finite(), truth.finite()) {
                (Some(e), Some(tr)) => {
                    let stretch = if tr == 0 {
                        1.0
                    } else {
                        f64::from(e) / f64::from(tr)
                    };
                    worst_stretch = worst_stretch.max(stretch);
                    answered += 1;
                    println!(
                        "[h{hour:02}]   route {s} -> {t}: {e} blocks (exact {tr}, stretch {stretch:.3})"
                    );
                }
                (None, None) => {
                    println!("[h{hour:02}]   route {s} -> {t}: unreachable (confirmed)");
                }
                (a, b) => unreachable!("decoder/truth disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    println!(
        "\n{answered} routes computed; worst stretch {worst_stretch:.3} (guarantee {})",
        1.0 + eps
    );
    assert!(worst_stretch <= 1.0 + eps + 1e-9);
}
