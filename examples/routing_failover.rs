//! Network fast-failover scenario: routing packets around failed routers
//! without recomputing routing tables.
//!
//! Implements the paper's motivating application: routers keep a local view
//! `F_u` of failed peers; when a router learns of a failure it immediately
//! recomputes the packet header from labels (no global route maintenance)
//! and traffic continues on `(1+ε)`-short paths in `G ∖ F`. Also shows the
//! *policy routing* variant: a router forbids part of the network for its
//! own traffic only.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example routing_failover
//! ```

use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::routing::Network;

fn main() {
    // A wireless-mesh-like topology: unit-disk graph on 150 nodes.
    let g = generators::random_geometric(150, 0.15, 7);
    println!(
        "mesh network: {} routers, {} links",
        g.num_vertices(),
        g.num_edges()
    );
    let net = Network::new(&g, 1.0);

    let s = NodeId::new(3);
    let t = NodeId::new(140);

    // Phase 1: healthy network.
    let healthy = net
        .route(s, t, &FaultSet::empty())
        .expect("connected instance");
    println!(
        "\n[healthy] {s} -> {t}: {} hops, header {} waypoints ({} bits)",
        healthy.hops,
        healthy.header.len(),
        healthy.header_bits
    );

    // Phase 2: two routers on the delivered path fail; the source reroutes
    // from labels only.
    let mid = healthy.path[healthy.path.len() / 2];
    let mid2 = healthy.path[healthy.path.len() / 3];
    let mut faults = FaultSet::empty();
    if mid != s && mid != t {
        faults.forbid_vertex(mid);
    }
    if mid2 != s && mid2 != t {
        faults.forbid_vertex(mid2);
    }
    println!("\n[failure] routers {mid} and {mid2} go down");
    match net.route(s, t, &faults) {
        Ok(d) => {
            println!(
                "[failover] rerouted in {} hops via {} waypoints; no failed router touched",
                d.hops,
                d.header.len()
            );
            for w in d.path.windows(2) {
                assert!(!faults.blocks_traversal(w[0], w[1]));
            }
        }
        Err(e) => println!("[failover] {e}"),
    }

    // Phase 3: policy routing — s forbids a region (e.g., untrusted ASes)
    // for its own traffic; the rest of the network is unaffected.
    let mut policy = FaultSet::empty();
    for v in 60..80u32 {
        if NodeId::new(v) != s && NodeId::new(v) != t {
            policy.forbid_vertex(NodeId::new(v));
        }
    }
    println!("\n[policy] {s} additionally forbids routers v60..v80 for its own traffic");
    match net.route(s, t, &policy) {
        Ok(d) => {
            for v in &d.path {
                assert!(!policy.is_vertex_faulty(*v), "policy violated at {v}");
            }
            println!(
                "[policy] delivered in {} hops while honouring the policy",
                d.hops
            );
        }
        Err(e) => println!("[policy] {e} (the policy disconnects t)"),
    }

    // Phase 4: a router that is down for everyone *and* a policy both apply.
    let mut combined = policy.clone();
    for v in faults.vertices() {
        combined.forbid_vertex(v);
    }
    match net.route(s, t, &combined) {
        Ok(d) => println!(
            "\n[combined] failures + policy: delivered in {} hops",
            d.hops
        ),
        Err(e) => println!("\n[combined] {e}"),
    }
}
