//! Weighted road network via the subdivision adapter.
//!
//! Real road segments have lengths; the paper's scheme is unweighted. This
//! example uses [`WeightedOracle`] — exact edge subdivision into the
//! unweighted scheme — to answer `(1+ε)` forbidden-set queries on a small
//! weighted highway map, with closures on both junctions and road segments.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example weighted_roads
//! ```

use fsdl::graph::NodeId;
use fsdl::labels::{WeightedFaults, WeightedOracle};

fn main() {
    // A small highway map: 8 junctions, segments weighted by length (km,
    // rounded). Two routes from 0 to 7: the fast northern corridor
    // (0-1-2-7) and the slower southern loop (0-3-4-5-6-7).
    let edges: &[(u32, u32, u32)] = &[
        (0, 1, 2), // northern corridor
        (1, 2, 3),
        (2, 7, 2),
        (0, 3, 3), // southern loop
        (3, 4, 2),
        (4, 5, 2),
        (5, 6, 3),
        (6, 7, 2),
        (1, 4, 4), // connector
        (2, 5, 5), // connector
    ];
    let oracle = WeightedOracle::new(8, edges, 1.0);
    println!(
        "highway map: 8 junctions, {} segments; subdivision has {} vertices",
        edges.len(),
        oracle.subdivision().num_vertices()
    );

    let s = NodeId::new(0);
    let t = NodeId::new(7);
    let open = WeightedFaults::none();
    println!(
        "\nall roads open:   0 -> 7 = {} km",
        oracle.distance(s, t, &open)
    );

    // The northern corridor's middle segment closes.
    let closure = WeightedFaults {
        vertices: vec![],
        edges: vec![(NodeId::new(1), NodeId::new(2))],
    };
    println!(
        "segment 1-2 shut: 0 -> 7 = {} km (rerouted south or via connectors)",
        oracle.distance(s, t, &closure)
    );

    // Junction 2 itself closes (roadworks).
    let junction = WeightedFaults {
        vertices: vec![NodeId::new(2)],
        edges: vec![],
    };
    println!(
        "junction 2 shut:  0 -> 7 = {} km",
        oracle.distance(s, t, &junction)
    );

    // Catastrophe: both connectors AND the corridor break.
    let multi = WeightedFaults {
        vertices: vec![NodeId::new(2)],
        edges: vec![(NodeId::new(1), NodeId::new(4))],
    };
    println!(
        "junction 2 + connector 1-4 shut: 0 -> 7 = {} km",
        oracle.distance(s, t, &multi)
    );
    assert!(oracle.connected(s, t, &multi), "southern loop still works");
}
