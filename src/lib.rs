//! Facade crate re-exporting the whole `fsdl` workspace. See README.md.
#![forbid(unsafe_code)]

// Compile-check every snippet in the tutorial as doctests.
#[cfg(doctest)]
mod tutorial {
    #![doc = include_str!("../docs/TUTORIAL.md")]
}

pub use fsdl_baselines as baselines;
pub use fsdl_bounds as bounds;
pub use fsdl_graph as graph;
pub use fsdl_labels as labels;
pub use fsdl_nets as nets;
pub use fsdl_routing as routing;
