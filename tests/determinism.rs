//! Determinism guarantees: EXPERIMENTS.md promises that fixed seeds
//! reproduce every table exactly. That requires the whole pipeline —
//! generators, nets, labels, tables, routes — to be bit-stable across runs
//! (including across the parallel net construction).

use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::labels::{ForbiddenSetOracle, Labeling, SchemeParams};
use fsdl::routing::{Network, RoutingScheme};

#[test]
fn labels_are_bit_stable_across_builds() {
    let g = generators::random_geometric(150, 0.13, 99);
    let n = g.num_vertices();
    let a = Labeling::build(&g, SchemeParams::new(1.0, n));
    let b = Labeling::build(&g, SchemeParams::new(1.0, n));
    for v in (0..n as u32).step_by(17) {
        let la = a.label_of(NodeId::new(v));
        let lb = b.label_of(NodeId::new(v));
        assert_eq!(la, lb, "label divergence at v{v}");
        let ea = fsdl::labels::codec::encode(&la, n);
        let eb = fsdl::labels::codec::encode(&lb, n);
        assert_eq!(ea.as_bytes(), eb.as_bytes(), "bit divergence at v{v}");
    }
}

#[test]
fn parallel_net_hierarchy_matches_itself() {
    // The scoped-thread fan-out must be order-independent.
    let g = generators::grid2d(14, 14);
    let a = fsdl::nets::NetHierarchy::build(&g);
    let b = fsdl::nets::NetHierarchy::build(&g);
    assert_eq!(a.level_sizes(), b.level_sizes());
    for v in g.vertices() {
        assert_eq!(a.level_of(v), b.level_of(v));
        for i in 0..=a.top_level() {
            assert_eq!(a.nearest(v, i), b.nearest(v, i));
        }
    }
}

#[test]
fn query_answers_and_paths_are_stable() {
    let g = generators::road_network(9, 9, 0.15, 4);
    let o1 = ForbiddenSetOracle::new(&g, 1.0);
    let o2 = ForbiddenSetOracle::new(&g, 1.0);
    let f = FaultSet::from_vertices([NodeId::new(40), NodeId::new(41)]);
    for s in (0..81u32).step_by(7) {
        for t in (0..81u32).step_by(11) {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            if f.is_vertex_faulty(s) || f.is_vertex_faulty(t) {
                continue;
            }
            let a1 = o1.query(s, t, &f);
            let a2 = o2.query(s, t, &f);
            assert_eq!(a1.distance, a2.distance);
            assert_eq!(a1.path, a2.path, "witness divergence {s}->{t}");
        }
    }
}

#[test]
fn routing_tables_and_routes_are_stable() {
    let g = generators::grid2d(7, 7);
    let l1 = Labeling::build(&g, SchemeParams::new(1.0, 49));
    let l2 = Labeling::build(&g, SchemeParams::new(1.0, 49));
    let (s1, s2) = (RoutingScheme::new(&l1), RoutingScheme::new(&l2));
    for v in (0..49u32).step_by(5) {
        let mut a: Vec<_> = s1.table_of(NodeId::new(v)).entries().collect();
        let mut b: Vec<_> = s2.table_of(NodeId::new(v)).entries().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "table divergence at v{v}");
    }
    let n1 = Network::new(&g, 1.0);
    let n2 = Network::new(&g, 1.0);
    let f = FaultSet::from_vertices([NodeId::new(24)]);
    let d1 = n1.route(NodeId::new(0), NodeId::new(48), &f).unwrap();
    let d2 = n2.route(NodeId::new(0), NodeId::new(48), &f).unwrap();
    assert_eq!(d1.path, d2.path);
    assert_eq!(d1.header, d2.header);
}
