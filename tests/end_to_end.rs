//! Cross-crate integration tests: the full pipeline (generators → nets →
//! labels → decoder → routing → bounds) exercised through the `fsdl`
//! facade.

use fsdl::baselines::ExactOracle;
use fsdl::bounds::{reconstruct_graph, LowerBoundFamily};
use fsdl::graph::{generators, FaultSet, NodeId};
use fsdl::labels::ForbiddenSetOracle;
use fsdl::routing::Network;
use fsdl_testkit::Rng;

/// Routing hop counts must equal the decoder's distance estimate exactly:
/// each sketch edge of weight `w` is realized by exactly `w` physical hops
/// along a shortest path.
#[test]
fn routing_hops_equal_decoder_distance() {
    let g = generators::grid2d(8, 8);
    let net = Network::new(&g, 1.0);
    let mut rng = Rng::seed_from_u64(31337);
    for _ in 0..30 {
        let s = NodeId::from_index(rng.gen_range(0..64));
        let t = NodeId::from_index(rng.gen_range(0..64));
        let mut f = FaultSet::empty();
        for _ in 0..3 {
            let v = NodeId::from_index(rng.gen_range(0..64));
            if v != s && v != t {
                f.forbid_vertex(v);
            }
        }
        let answer = net.oracle().query(s, t, &f);
        match net.route(s, t, &f) {
            Ok(d) => {
                assert_eq!(
                    d.hops as u32,
                    answer.distance.finite().expect("delivered implies finite"),
                    "hops must equal the decoder estimate for {s}->{t}"
                );
            }
            Err(_) => assert!(answer.distance.is_infinite()),
        }
    }
}

/// The decoder, the exact oracle, and the routing simulator must agree on
/// connectivity for every query.
#[test]
fn connectivity_agreement_across_components() {
    let g = generators::random_geometric(90, 0.16, 5);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let exact = ExactOracle::new(&g);
    let net = Network::new(&g, 1.0);
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..25 {
        let s = NodeId::from_index(rng.gen_range(0..90));
        let t = NodeId::from_index(rng.gen_range(0..90));
        let mut f = FaultSet::empty();
        for _ in 0..4 {
            let v = NodeId::from_index(rng.gen_range(0..90));
            if v != s && v != t {
                f.forbid_vertex(v);
            }
        }
        let label_says = oracle.connected(s, t, &f);
        let exact_says = exact.connected(s, t, &f);
        let route_says = net.route(s, t, &f).is_ok();
        assert_eq!(label_says, exact_says, "decoder vs exact on {s}->{t}");
        assert_eq!(route_says, exact_says, "routing vs exact on {s}->{t}");
    }
}

/// The lower-bound attack works through the full labeling stack on a
/// family member, round-tripping graph -> labels -> queries -> graph.
#[test]
fn attack_roundtrip_through_labels() {
    let fam = LowerBoundFamily::new(3, 2);
    for seed in [0u64, 1, 2] {
        let member = fam.random_member(seed);
        let oracle = ForbiddenSetOracle::new(&member, 3.0);
        assert_eq!(reconstruct_graph(&oracle), member, "seed {seed}");
    }
}

/// Labels survive a bit-level encode/decode round trip and the decoded
/// labels answer queries identically.
#[test]
fn serialized_labels_answer_queries() {
    let g = generators::cycle(40);
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let n = g.num_vertices();
    let s = NodeId::new(0);
    let t = NodeId::new(17);
    let fv = NodeId::new(5);

    // Serialize the three labels to bit strings and decode them back.
    let round_trip = |v: NodeId| {
        let label = oracle.label(v);
        let w = fsdl::labels::codec::encode(&label, n);
        let decoded = fsdl::labels::codec::decode(w.as_bytes(), w.len_bits(), n).expect("decodes");
        assert_eq!(&decoded, label.as_ref());
        decoded
    };
    let ls = round_trip(s);
    let lt = round_trip(t);
    let lf = round_trip(fv);

    let ql = fsdl::labels::QueryLabels {
        fault_vertices: vec![&lf],
        fault_edges: vec![],
    };
    let from_decoded = fsdl::labels::query(oracle.params(), &ls, &lt, &ql);
    let direct = oracle.query(s, t, &FaultSet::from_vertices([fv]));
    assert_eq!(from_decoded.distance, direct.distance);
    assert_eq!(from_decoded.path, direct.path);
}

/// The whole pipeline on the paper's own lower-bound graph: labels on
/// G_{p,d} answer fault queries within stretch.
#[test]
fn linf_grid_full_pipeline() {
    let g = generators::grid_linf(5, 2);
    let oracle = ForbiddenSetOracle::new(&g, 2.0);
    let exact = ExactOracle::new(&g);
    let f = FaultSet::from_vertices([NodeId::new(12)]); // center
    for s in 0..25u32 {
        for t in 0..25u32 {
            if s == 12 || t == 12 {
                continue;
            }
            let est = oracle.distance(NodeId::new(s), NodeId::new(t), &f);
            let truth = exact.distance(NodeId::new(s), NodeId::new(t), &f);
            match truth.finite() {
                Some(td) => {
                    let e = est.finite().expect("connected");
                    assert!(e >= td && f64::from(e) <= 3.0 * f64::from(td) + 1e-9);
                }
                None => assert!(est.is_infinite()),
            }
        }
    }
}
