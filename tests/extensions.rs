//! Cross-crate integration tests for the extension layers: the weighted
//! adapter, the recovery simulation, and the baseline labelings working
//! over the same substrate.

use fsdl::baselines::{HubLabeling, TreeOracle};
use fsdl::graph::{bfs, generators, FaultSet, NodeId};
use fsdl::labels::{ForbiddenSetOracle, WeightedFaults, WeightedOracle};
use fsdl::routing::{Network, RecoverySim};

/// The weighted oracle with all-unit weights must agree with the plain
/// unweighted oracle on every query.
#[test]
fn weighted_unit_matches_unweighted() {
    let g = generators::grid2d(5, 5);
    let edges: Vec<(u32, u32, u32)> = g.edges().map(|e| (e.lo().raw(), e.hi().raw(), 1)).collect();
    let weighted = WeightedOracle::new(25, &edges, 1.0);
    let plain = ForbiddenSetOracle::new(&g, 1.0);
    for s in (0..25u32).step_by(3) {
        for t in (0..25u32).step_by(4) {
            for f in [None, Some(12u32)] {
                let (wf, pf) = match f {
                    None => (WeightedFaults::none(), FaultSet::empty()),
                    Some(v) => (
                        WeightedFaults {
                            vertices: vec![NodeId::new(v)],
                            edges: vec![],
                        },
                        FaultSet::from_vertices([NodeId::new(v)]),
                    ),
                };
                if pf.is_vertex_faulty(NodeId::new(s)) || pf.is_vertex_faulty(NodeId::new(t)) {
                    continue;
                }
                assert_eq!(
                    weighted.distance(NodeId::new(s), NodeId::new(t), &wf),
                    plain.distance(NodeId::new(s), NodeId::new(t), &pf),
                    "unit-weight mismatch {s}->{t}"
                );
            }
        }
    }
}

/// After enough traffic, the recovery simulation's answers match the
/// omniscient network's.
#[test]
fn recovery_converges_to_omniscient_routing() {
    let g = generators::cycle(20);
    let mut sim = RecoverySim::new(Network::new(&g, 1.0));
    sim.fail_vertex(NodeId::new(5));
    // Drive traffic until the fleet mostly knows.
    for k in 0..40u32 {
        let s = NodeId::new((k * 3) % 20);
        let t = NodeId::new((k * 7 + 1) % 20);
        if s == NodeId::new(5) || t == NodeId::new(5) {
            continue;
        }
        let _ = sim.send(s, t);
    }
    assert!(sim.awareness() > 0.8, "awareness {}", sim.awareness());
    // An informed sender routes identically to an omniscient one.
    let omniscient = Network::new(&g, 1.0);
    let truth_faults = sim.ground_truth().clone();
    let direct = omniscient
        .route(NodeId::new(3), NodeId::new(8), &truth_faults)
        .unwrap();
    let via_sim = sim.send(NodeId::new(3), NodeId::new(8)).unwrap();
    assert_eq!(via_sim.reroutes, 0, "informed sender must not reroute");
    assert_eq!(via_sim.hops, direct.hops);
}

/// On trees, three independent exact systems (BFS, centroid tree labels,
/// hub labels) and the (1+eps) scheme must be mutually consistent.
#[test]
fn four_systems_agree_on_trees() {
    let tree = generators::balanced_tree(3, 3); // 40 vertices
    let ct = TreeOracle::new(&tree);
    let hl = HubLabeling::build(&tree);
    let fs = ForbiddenSetOracle::new(&tree, 1.0);
    for s in (0..40u32).step_by(3) {
        for t in (0..40u32).step_by(5) {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            let exact = bfs::pair_distance_avoiding(&tree, s, t, &FaultSet::empty());
            assert_eq!(ct.distance(s, t, &FaultSet::empty()), exact);
            assert_eq!(HubLabeling::query(&hl.label_of(s), &hl.label_of(t)), exact);
            let approx = fs.distance(s, t, &FaultSet::empty());
            let (Some(a), Some(e)) = (approx.finite(), exact.finite()) else {
                panic!("tree is connected");
            };
            assert!(a >= e && f64::from(a) <= 2.0 * f64::from(e));
        }
    }
}

/// Weighted fault semantics: failing a weighted edge must not affect other
/// edges sharing its endpoints.
#[test]
fn weighted_edge_fault_is_isolated() {
    // Multigraph-like shape: two distinct weighted routes between the same
    // endpoints through different middle vertices.
    let edges = &[(0u32, 1u32, 2u32), (1, 3, 2), (0, 2, 3), (2, 3, 3)];
    let oracle = WeightedOracle::new(4, edges, 1.0);
    let f = WeightedFaults {
        vertices: vec![],
        edges: vec![(NodeId::new(0), NodeId::new(1))],
    };
    let d = oracle.distance(NodeId::new(0), NodeId::new(3), &f);
    assert_eq!(d.finite(), Some(6), "the 0-2-3 route must survive intact");
}

/// Adversarial faults from the cut structure: disconnections are always
/// detected across the stack (labels, routing).
#[test]
fn bridge_faults_disconnect_consistently() {
    let g = generators::barbell(4, 2);
    let cs = fsdl::graph::cut::cut_structure(&g);
    assert!(!cs.bridges.is_empty());
    let oracle = ForbiddenSetOracle::new(&g, 1.0);
    let net = Network::new(&g, 1.0);
    for e in &cs.bridges {
        let f = FaultSet::from_edges(&g, [(e.lo(), e.hi())]);
        // Endpoints of the bridge land in different components.
        let truth = bfs::pair_distance_avoiding(&g, e.lo(), e.hi(), &f);
        assert!(truth.is_infinite());
        assert!(!oracle.connected(e.lo(), e.hi(), &f));
        assert!(net.route(e.lo(), e.hi(), &f).is_err());
    }
}
