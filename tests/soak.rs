//! Long-running randomized soak tests (run with `cargo test -- --ignored`).
//!
//! These extend the per-crate property tests with larger instances and more
//! rounds; they are `#[ignore]`d so the default `cargo test` stays fast, and
//! they run in the pre-release checklist.

use fsdl::baselines::ExactOracle;
use fsdl::graph::{generators, FaultSet, Graph, NodeId};
use fsdl::labels::ForbiddenSetOracle;
use fsdl::routing::Network;
use fsdl_testkit::{soak_multiplier, Rng};

fn soak_one(g: &Graph, eps: f64, rounds: usize, max_faults: usize, seed: u64) {
    let n = g.num_vertices();
    let oracle = ForbiddenSetOracle::new(g, eps);
    let exact = ExactOracle::new(g);
    let mut rng = Rng::seed_from_u64(seed);
    let rounds = rounds * soak_multiplier();
    for round in 0..rounds {
        let s = NodeId::from_index(rng.gen_range(0..n));
        let t = NodeId::from_index(rng.gen_range(0..n));
        let mut f = FaultSet::empty();
        let budget = rng.gen_range(0..=max_faults);
        while f.len() < budget {
            if rng.gen_bool(0.75) {
                let v = NodeId::from_index(rng.gen_range(0..n));
                if v != s && v != t {
                    f.forbid_vertex(v);
                }
            } else {
                let v = NodeId::from_index(rng.gen_range(0..n));
                let nbrs = g.neighbors(v);
                if !nbrs.is_empty() {
                    let w = NodeId::new(nbrs[rng.gen_range(0..nbrs.len())]);
                    f.forbid_edge_unchecked(v, w);
                }
            }
        }
        let answer = oracle.distance(s, t, &f);
        let truth = exact.distance(s, t, &f);
        match truth.finite() {
            None => assert!(answer.is_infinite(), "round {round}: invented path"),
            Some(td) => {
                let ad = answer
                    .finite()
                    .unwrap_or_else(|| panic!("round {round}: spurious disconnection {s}->{t}"));
                assert!(ad >= td, "round {round}: unsound {ad} < {td}");
                assert!(
                    f64::from(ad) <= (1.0 + eps) * f64::from(td) + 1e-9,
                    "round {round}: stretch {ad}/{td}"
                );
            }
        }
    }
}

#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_grid_20x20() {
    soak_one(&generators::grid2d(20, 20), 1.0, 300, 12, 0x50AC)
}

#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_cycle_512() {
    soak_one(&generators::cycle(512), 0.5, 300, 10, 2)
}

#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_udg_400() {
    let g = generators::random_geometric(400, 0.085, 77);
    soak_one(&g, 1.0, 200, 8, 3)
}

#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_tree_781() {
    soak_one(&generators::balanced_tree(5, 4), 2.0, 200, 10, 4)
}

#[test]
#[ignore = "soak test; run with --ignored"]
fn soak_routing_grid() {
    let g = generators::grid2d(12, 12);
    let net = Network::new(&g, 1.0);
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..150 * soak_multiplier() {
        let s = NodeId::from_index(rng.gen_range(0..144));
        let t = NodeId::from_index(rng.gen_range(0..144));
        let mut f = FaultSet::empty();
        for _ in 0..rng.gen_range(0..8u32) {
            let v = NodeId::from_index(rng.gen_range(0..144));
            if v != s && v != t {
                f.forbid_vertex(v);
            }
        }
        if let Ok(d) = net.route(s, t, &f) {
            for w in d.path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
                assert!(!f.blocks_traversal(w[0], w[1]));
            }
        }
    }
}
